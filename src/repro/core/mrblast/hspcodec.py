"""HSP ⇄ structured-array codec: mrblast's record schema for the columnar
KV plane.

An :class:`~repro.blast.hsp.HSP` is twelve numbers and two ids — a natural
structured-array row.  Keyed by query id, a whole work unit's hits become
one ``(key column, HSP row array)`` batch, so the shuffle moves contiguous
buffers instead of pickled dataclasses.

Round-trip exactness is what the parity tests pin: ints and IEEE-754
doubles are stored verbatim (``<i8``/``<f8``), ids as fixed-width UTF-8
bytes.  Ids wider than the configured column (or ending in NUL, which
fixed-width 'S' fields cannot represent) are rejected at encode time with a
clear error rather than silently truncated.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blast.hsp import HSP
from repro.mrmpi.schema import RecordSchema

__all__ = ["DEFAULT_ID_WIDTH", "hsp_dtype", "hsp_schema", "encode_hsps", "decode_hsp"]

#: Default byte width of the query/subject id columns.
DEFAULT_ID_WIDTH = 64

_INT_FIELDS = (
    "score",
    "q_start",
    "q_end",
    "s_start",
    "s_end",
    "identities",
    "align_len",
    "gaps",
    "strand",
    "frame",
)
_FLOAT_FIELDS = ("bit_score", "evalue")


def hsp_dtype(id_width: int = DEFAULT_ID_WIDTH) -> np.dtype:
    """Structured dtype of one HSP row."""
    if id_width < 1:
        raise ValueError(f"id_width must be >= 1, got {id_width}")
    return np.dtype(
        [("query_id", f"S{id_width}"), ("subject_id", f"S{id_width}")]
        + [(name, "<i8") for name in _INT_FIELDS]
        + [(name, "<f8") for name in _FLOAT_FIELDS]
    )


def _encode_id(text: str, width: int) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > width:
        raise ValueError(
            f"sequence id {text!r} is {len(raw)} bytes, wider than the columnar "
            f"id column (id_width={width}); raise MrBlastConfig.id_width or set "
            f"columnar=False"
        )
    if raw.endswith(b"\x00"):
        raise ValueError(
            f"sequence id {text!r} ends with a NUL byte, which fixed-width 'S' "
            f"columns cannot represent; set columnar=False"
        )
    return raw


def encode_hsps(hsps: Sequence[HSP], id_width: int = DEFAULT_ID_WIDTH) -> np.ndarray:
    """Encode HSPs into one structured row array."""
    arr = np.empty(len(hsps), dtype=hsp_dtype(id_width))
    arr["query_id"] = [_encode_id(h.query_id, id_width) for h in hsps]
    arr["subject_id"] = [_encode_id(h.subject_id, id_width) for h in hsps]
    for name in _INT_FIELDS:
        arr[name] = [getattr(h, name) for h in hsps]
    for name in _FLOAT_FIELDS:
        arr[name] = [getattr(h, name) for h in hsps]
    return arr


def decode_hsp(row: np.void) -> HSP:
    """One stored row back to an :class:`HSP` (exact round-trip)."""
    return HSP(
        query_id=bytes(row["query_id"]).decode("utf-8"),
        subject_id=bytes(row["subject_id"]).decode("utf-8"),
        score=int(row["score"]),
        bit_score=float(row["bit_score"]),
        evalue=float(row["evalue"]),
        q_start=int(row["q_start"]),
        q_end=int(row["q_end"]),
        s_start=int(row["s_start"]),
        s_end=int(row["s_end"]),
        identities=int(row["identities"]),
        align_len=int(row["align_len"]),
        gaps=int(row["gaps"]),
        strand=int(row["strand"]),
        frame=int(row["frame"]),
    )


def hsp_schema(id_width: int = DEFAULT_ID_WIDTH) -> RecordSchema:
    """The (query id → HSP) record schema used by the mrblast driver."""
    return RecordSchema(
        key_dtype=f"S{id_width}",
        value_dtype=hsp_dtype(id_width),
        key_kind="str",
        encode_values=lambda hsps: encode_hsps(hsps, id_width),
        decode_value=decode_hsp,
    )
