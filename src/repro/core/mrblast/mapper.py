"""The map() side of MR-MPI BLAST.

Each map() invocation searches one query block against one DB partition with
the serial engine and emits one ``(query id, HSP)`` key-value pair per hit.
Per the paper: "The DB object is cached between map() invocations on a given
rank, and only re-initialized if the different DB partition is required",
and "the DB length is overridden in the BLAST call to be the entire length
of the DB".  A self-hit filter reproduces the paper's "exclude the hits of
the RefSeq fragments against themselves" modification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bio.seq import SeqRecord
from repro.bio.shred import parent_id
from repro.blast.dbreader import DatabaseAlias, DbPartition
from repro.blast.engine import make_engine
from repro.blast.hsp import HSP
from repro.blast.lookup import LookupCache
from repro.blast.options import BlastOptions
from repro.core.checkpoint import PoisonList
from repro.core.mrblast.workitems import WorkItem
from repro.mpi.exceptions import MPIError
from repro.mrmpi.keyvalue import KeyValue
from repro.obs.trace import current_tracer

__all__ = ["MrBlastMapper", "MapperStats", "MapUnitError", "exclude_self_hits", "unit_key"]


def unit_key(item: WorkItem) -> str:
    """Stable poison-ledger key for one (block, partition) work unit."""
    return f"b{item.block_index}:p{item.partition_index}"


class MapUnitError(RuntimeError):
    """A work unit's map() raised; carries the unit key for the poison ledger."""

    def __init__(self, key: str, cause: BaseException) -> None:
        super().__init__(f"work unit {key} failed: {cause!r}")
        self.unit_key = key


def exclude_self_hits(query_id: str, hsp: HSP) -> bool:
    """True when the hit is a shredded fragment matching its own parent."""
    return parent_id(query_id) == hsp.subject_id or f"db_{parent_id(query_id)}" == hsp.subject_id


@dataclass
class MapperStats:
    """Per-rank instrumentation mirroring what Fig. 5 plots.

    The per-stage seconds break the engine's busy time into seeding
    (lookup build/fetch + scans), ungapped extension and gapped extension;
    ``lookup_cache_hits`` counts work units whose query-block lookup table
    came out of the cross-partition :class:`~repro.blast.lookup.LookupCache`
    instead of being rebuilt.
    """

    units_processed: int = 0
    partition_switches: int = 0
    hits_emitted: int = 0
    busy_seconds: float = 0.0
    seed_seconds: float = 0.0
    ungapped_seconds: float = 0.0
    gapped_seconds: float = 0.0
    lookup_cache_hits: int = 0
    #: fused-scheduler telemetry: total scheduler rounds across this rank's
    #: units (0 under the staged oracle) and the largest per-round
    #: intermediate slab any unit held
    fused_rounds: int = 0
    peak_slab_bytes: int = 0
    #: robustness counters: units skipped because their failure budget is
    #: spent, and map() exceptions this rank recorded into the poison ledger
    quarantined_units: int = 0
    map_failures: int = 0
    #: (start, end, busy) wall-clock interval of each unit, for traces
    intervals: list[tuple[float, float, float]] = field(default_factory=list)


class MrBlastMapper:
    """Callable work-unit executor bound to one rank.

    Caches the open DB partition object and the loaded query blocks between
    invocations; the cache behaviour (how often a rank must re-open a
    different partition) is exactly what the paper's block-size tuning and
    the Fig. 4 crossover are about.
    """

    def __init__(
        self,
        alias: DatabaseAlias,
        query_blocks: Sequence[Sequence[SeqRecord]],
        options: BlastOptions,
        hit_filter: Callable[[str, HSP], bool] | None = None,
        lookup_cache_blocks: int = 8,
        poison: PoisonList | None = None,
        fault_injector: Callable[[WorkItem], None] | None = None,
    ) -> None:
        # Always search with whole-database statistics (DB-split rule).
        self.options = options.with_db_size(alias.total_length, alias.num_seqs)
        self.alias = alias
        self.query_blocks = query_blocks
        self.hit_filter = hit_filter
        self.stats = MapperStats()
        self._partition: DbPartition | None = None
        self._partition_index: int | None = None
        self._engine = make_engine(self.options)
        # Query-side mirror of the DB-partition cache: a block searched
        # against m partitions builds its lookup table once, not m times.
        self.lookup_cache: LookupCache | None = (
            LookupCache(capacity=lookup_cache_blocks) if lookup_cache_blocks > 0 else None
        )
        self._engine.set_lookup_cache(self.lookup_cache)
        self.poison = poison
        self.quarantined: frozenset[str] = (
            frozenset(poison.quarantined()) if poison is not None else frozenset()
        )
        self.fault_injector = fault_injector

    def set_query_blocks(self, query_blocks: Sequence[Sequence[SeqRecord]]) -> None:
        """Swap in a new set of query blocks, keeping every warm cache.

        The resident service mode (:mod:`repro.serve`) reuses one mapper per
        rank across its whole lifetime: the open DB partition, the
        cross-partition :class:`~repro.blast.lookup.LookupCache` (keyed by
        block *content*, so stale blocks simply age out of the LRU) and the
        engine's Karlin/search-space caches all survive the swap — only the
        queries change between jobs.
        """
        self.query_blocks = query_blocks

    def release(self) -> None:
        """Drop the cached DB partition (called when the rank unwinds)."""
        if self._partition is not None:
            self._partition.release()
            self._partition = None
            self._partition_index = None

    def _get_partition(self, index: int) -> DbPartition:
        if self._partition_index != index:
            if self._partition is not None:
                self._partition.release()
            self._partition = self.alias.open_partition(index)
            self._partition_index = index
            self.stats.partition_switches += 1
        assert self._partition is not None
        return self._partition

    def __call__(self, itask: int, item: WorkItem, kv: KeyValue) -> None:
        """Execute one work unit and emit its hits.

        A unit that has exhausted its failure budget (the poison ledger of
        earlier supervised attempts) is skipped and counted instead of being
        allowed to kill the job again.  A unit that raises here records the
        failure *before* the exception propagates — the whole MPI job is
        about to die, and the ledger is what the relaunch learns from.
        """
        key = unit_key(item)
        trc = current_tracer()
        if key in self.quarantined:
            self.stats.quarantined_units += 1
            if trc.enabled:
                trc.instant("mrblast.unit.quarantined", cat="driver", unit=key)
            return
        try:
            if self.fault_injector is not None:
                self.fault_injector(item)
            self._execute(item, kv)
        except MPIError:
            raise  # runtime-level failure, not this unit's fault
        except Exception as exc:
            self.stats.map_failures += 1
            if trc.enabled:
                trc.instant("mrblast.unit.failed", cat="driver", unit=key,
                            error=repr(exc))
            if self.poison is not None:
                self.poison.record_failure(key, repr(exc))
            raise MapUnitError(key, exc) from exc

    def _execute(self, item: WorkItem, kv: KeyValue) -> None:
        trc = current_tracer()
        sid = None
        if trc.enabled:
            sid = trc.begin("mrblast.unit", cat="driver",
                            block=item.block_index,
                            partition=item.partition_index)
        t0 = time.perf_counter()
        partition = self._get_partition(item.partition_index)
        queries = self.query_blocks[item.block_index]
        hits = self._engine.search_block(queries, partition)
        if self.hit_filter is not None:
            hits = [h for h in hits if not self.hit_filter(h.query_id, h)]
        if hasattr(kv, "add_batch"):
            # Columnar plane: the whole unit's hits become one batch — one
            # key column plus one structured HSP row array.
            kv.add_batch([h.query_id for h in hits], hits)
        else:
            for hsp in hits:
                kv.add(hsp.query_id, hsp)
        self.stats.hits_emitted += len(hits)
        t1 = time.perf_counter()
        self.stats.units_processed += 1
        self.stats.busy_seconds += t1 - t0
        last = self._engine.last_stats
        self.stats.seed_seconds += last.seed_seconds
        self.stats.ungapped_seconds += last.ungapped_seconds
        self.stats.gapped_seconds += last.gapped_seconds
        self.stats.lookup_cache_hits += last.lookup_cache_hits
        self.stats.fused_rounds += last.fused_rounds
        self.stats.peak_slab_bytes = max(self.stats.peak_slab_bytes, last.peak_slab_bytes)
        self.stats.intervals.append((t0, t1, last.busy_seconds))
        if trc.enabled:
            # The attrs are the very floats added to MapperStats above, so
            # trace-derived stage sums match the counters bit-for-bit.
            trc.end(sid, busy_s=t1 - t0, seed_s=last.seed_seconds,
                    ungapped_s=last.ungapped_seconds,
                    gapped_s=last.gapped_seconds, hits=len(hits),
                    fused_rounds=last.fused_rounds,
                    slab_bytes=last.peak_slab_bytes)
