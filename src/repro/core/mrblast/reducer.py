"""The reduce() side of MR-MPI BLAST.

After collate(), each rank holds, for some subset of query ids, *all* HSPs
found for that query across every DB partition.  The reducer "sorts each
query hits by the E-value, selects the requested number of top hits if such
cutoff is specified by the user and appends hits to the file that is owned
by each rank" (paper §III.A).  Results therefore land in one file per rank,
with each query's hits complete, contiguous and E-value-sorted within it.

The driver truncates each rank's file once at startup; the reducer only
ever appends, so multiple MapReduce iterations accumulate into the same
per-rank file exactly as in the paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.blast.hsp import HSP, top_hits
from repro.blast.options import BlastOptions
from repro.blast.tabular import format_tabular, write_tabular
from repro.mrmpi.keyvalue import KeyValue

__all__ = ["MrBlastReducer", "DemuxReducer"]


@dataclass
class MrBlastReducer:
    """Callable KMV reducer bound to one rank's output file."""

    options: BlastOptions
    output_path: str
    #: number of queries and hits this rank wrote (instrumentation)
    queries_written: int = 0
    hits_written: int = 0

    def __call__(self, query_id: str, hsps: list[HSP], kv: KeyValue) -> None:
        selected = top_hits(hsps, self.options.max_hits, self.options.evalue)
        if not selected:
            return
        os.makedirs(os.path.dirname(os.path.abspath(self.output_path)), exist_ok=True)
        write_tabular(selected, self.output_path, append=True)
        self.queries_written += 1
        self.hits_written += len(selected)
        # Emit a summary pair so callers can inspect result placement.
        kv.add(query_id, len(selected))


@dataclass
class DemuxReducer:
    """Per-request result demux: one tabular byte-string per query.

    The resident service (:mod:`repro.serve`) streams each query's results
    back to the submitter instead of appending them to a per-rank file, so
    its reduce step keeps the selected hits *demultiplexed by query id*.
    The bytes are produced by the exact formatter :class:`MrBlastReducer`
    writes through, so a query's service response is byte-identical to the
    slice a one-shot ``run_mrblast`` would have appended for it.
    """

    options: BlastOptions
    #: query id -> encoded outfmt-6 block (empty queries never appear)
    results: dict[str, bytes] = field(default_factory=dict)
    queries_written: int = 0
    hits_written: int = 0

    def __call__(self, query_id: str, hsps: list[HSP], kv: KeyValue) -> None:
        selected = top_hits(hsps, self.options.max_hits, self.options.evalue)
        if not selected:
            return
        self.results[query_id] = format_tabular(selected).encode("ascii")
        self.queries_written += 1
        self.hits_written += len(selected)
        kv.add(query_id, len(selected))
