"""The MR-MPI BLAST driver: the control flow of the paper's Fig. 1.

Per outer iteration (a subset of query blocks):

1. ``map`` — master/worker dispatch of (query block, DB partition) units;
   each unit runs the serial engine and emits (query id, HSP) pairs.
2. ``collate`` — hits of each query regrouped onto one rank.
3. ``reduce`` — per-query E-value sort + top-K, appended to the rank's file.

"In order to process arbitrarily large collections of the queries, we
employ multiple iterations of the above MapReduce protocol within the same
MPI process by looping over the consecutive subsets of the entire query
set.  This is done to control the size of the intermediate key-value
dataset" (§III.A) — ``blocks_per_iteration`` is that knob.

The iteration loop doubles as the checkpoint cadence: after each iteration
every rank commits a progress manifest (``repro.core.checkpoint``), so a
supervised relaunch (:func:`mrblast_supervised`) resumes from the last
globally committed iteration instead of restarting the whole job — the
recovery story §II.A concedes plain MPI lacks.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.blast.dbreader import DatabaseAlias
from repro.blast.hsp import HSP
from repro.blast.options import BlastOptions
from repro.bio.seq import SeqRecord
from repro.core.checkpoint import IterationCheckpoint, PoisonList
from repro.core.mrblast.mapper import MrBlastMapper
from repro.core.mrblast.reducer import MrBlastReducer
from repro.core.mrblast.workitems import WorkItem, build_work_items
from repro.mpi.comm import Comm
from repro.mpi.faultplan import FaultPlan
from repro.mpi.runtime import RetryPolicy, SupervisedOutcome, run_spmd, run_supervised
from repro.mrmpi.mapreduce import MapReduce, MapStyle
from repro.obs.export import write_chrome_trace
from repro.obs.trace import TraceSession
from repro.util.log import rank_logger

__all__ = [
    "MrBlastConfig",
    "MrBlastResult",
    "run_mrblast",
    "mrblast_spmd",
    "mrblast_supervised",
]


@dataclass
class MrBlastConfig:
    """Everything one MR-MPI BLAST run needs.

    ``query_blocks`` are materialised blocks (lists of records) — the
    pre-split FASTA files of the paper after loading.  ``blocks_per_iteration
    = 0`` means a single iteration over everything.
    """

    alias_path: str
    query_blocks: Sequence[Sequence[SeqRecord]]
    options: BlastOptions = field(default_factory=BlastOptions.blastn)
    output_dir: str = "mrblast_out"
    blocks_per_iteration: int = 0
    mapstyle: MapStyle = MapStyle.MASTER_WORKER
    memsize: int = 64 * 1024 * 1024
    work_order: str = "partition_major"
    hit_filter: Callable[[str, HSP], bool] | None = None
    #: §V improvement: location-aware dispatch — workers preferentially
    #: receive units for the DB partition they already hold, cutting
    #: partition reloads (see the scheduling ablation bench).
    locality_aware: bool = False
    #: capacity (in query blocks) of the per-rank cross-partition lookup
    #: cache: the query-side mirror of the DB-partition cache, letting one
    #: block's stage-1 lookup table be reused across every partition it
    #: meets on a rank.  0 disables caching (the pre-cache behaviour).
    lookup_cache_blocks: int = 8
    #: combiner optimisation: apply the per-query top-K locally (compress())
    #: before collate, shrinking the shuffled key-value volume.  Safe because
    #: the global top-K is a subset of the union of per-rank top-Ks — the
    #: same argument the paper makes for per-partition hit lists.
    combiner: bool = False
    #: use the columnar KV data plane: each work unit's HSPs travel as one
    #: (query-id column, structured HSP row array) batch, the shuffle hashes
    #: whole key columns at once, grouping is the sort-based convert, and
    #: spill pages are raw binary buffers.  Output is bit-identical to the
    #: object plane (same rank placement, same within-query hit order);
    #: ``False`` restores the legacy pickled-object path.
    columnar: bool = True
    #: byte width of the query/subject id columns on the columnar plane;
    #: encoding fails loudly (never truncates) if an id is wider.
    id_width: int = 64
    #: per-iteration checkpointing: the practical answer to §II.A's missing
    #: MPI fault tolerance.  Progress manifests record, per rank, the
    #: output-file byte offset after each completed outer iteration;
    #: ``resume=True`` truncates every rank's file to the last *globally*
    #: completed iteration and continues from there, so a killed job repeats
    #: at most one iteration's work.
    resume: bool = False
    #: stop after this many (additional) outer iterations — incremental
    #: processing and the unit test hook for resume
    stop_after_iterations: int | None = None
    #: directory for KV/KMV spill files (None = system temp dir)
    spool_dir: str | None = None
    #: a work unit whose map() raises is retried on this many supervised
    #: relaunches before being quarantined (skipped and reported) instead of
    #: killing the job forever.  0 disables the poison ledger entirely.
    poison_attempts: int = 3
    #: test/chaos hook: called with each WorkItem before it executes; raise
    #: to simulate an application failure inside map()
    unit_fault_injector: Callable[[WorkItem], None] | None = None
    #: write a Chrome ``trace_event`` JSON of the whole run here (open in
    #: chrome://tracing or Perfetto).  None disables tracing entirely —
    #: the zero-cost default.
    trace_path: str | None = None
    #: transport backend: "thread" (in-process, GIL-bound parity oracle) or
    #: "process" (one OS process per rank, real multi-core map compute).
    #: None defers to the REPRO_MPI_BACKEND environment default.
    backend: str | None = None
    #: process-backend shared-memory arena budget in MiB per rank (0
    #: disables the arena, restoring the per-message shm path).  None
    #: defers to $REPRO_MPI_ARENA_MB / the built-in default; ignored by
    #: the thread backend.
    arena_mb: int | None = None
    #: straggler mitigation: re-issue a work unit to an idle worker once its
    #: elapsed time exceeds this factor times the running median unit
    #: runtime (None disables speculation).  First completion wins; output
    #: is byte-identical to a no-speculation run.
    speculation_factor: float | None = None
    #: degraded-mode completion: a worker dying mid-map no longer aborts the
    #: job — its units are reassigned to survivors and the run finishes with
    #: ``degraded=True`` plus loss counters in :class:`MrBlastResult`.
    degraded: bool = False

    def __post_init__(self) -> None:
        if not self.query_blocks:
            raise ValueError("query_blocks must not be empty")
        if self.blocks_per_iteration < 0:
            raise ValueError("blocks_per_iteration must be >= 0")
        if self.lookup_cache_blocks < 0:
            raise ValueError("lookup_cache_blocks must be >= 0")
        if self.id_width < 1:
            raise ValueError("id_width must be >= 1")
        if self.stop_after_iterations is not None and self.stop_after_iterations < 1:
            raise ValueError("stop_after_iterations must be >= 1 when set")
        if self.speculation_factor is not None and self.speculation_factor <= 1.0:
            raise ValueError(
                f"speculation_factor must be > 1.0, got {self.speculation_factor}")

    def validate(self) -> None:
        """Fail-fast checks before any rank spawns.

        One clear error in the launcher beats N ranks aborting mid-map: the
        alias file must exist and parse, every query block must be non-empty,
        sizes must be sane, and the output/spool directories must be
        writable.  Raises :class:`ValueError` naming the offending field.
        """
        if not os.path.isfile(self.alias_path):
            raise ValueError(f"mrblast config: alias_path {self.alias_path!r} does not exist")
        try:
            DatabaseAlias.load(self.alias_path)
        except Exception as exc:
            raise ValueError(
                f"mrblast config: alias_path {self.alias_path!r} is not a readable "
                f"database alias ({exc})"
            ) from exc
        for i, block in enumerate(self.query_blocks):
            if not block:
                raise ValueError(f"mrblast config: query block {i} is empty")
        if self.memsize < 1:
            raise ValueError(f"mrblast config: memsize must be >= 1, got {self.memsize}")
        if self.poison_attempts < 0:
            raise ValueError(
                f"mrblast config: poison_attempts must be >= 0, got {self.poison_attempts}"
            )
        if self.work_order not in ("partition_major", "query_major"):
            raise ValueError(f"mrblast config: unknown work_order {self.work_order!r}")
        _check_writable_dir(self.output_dir, "output_dir")
        if self.spool_dir is not None:
            _check_writable_dir(self.spool_dir, "spool_dir")


def _check_writable_dir(path: str, name: str) -> None:
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        raise ValueError(f"mrblast config: {name} {path!r} cannot be created ({exc})") from exc
    probe = os.path.join(path, ".write-probe")
    try:
        with open(probe, "w") as fh:
            fh.write("")
        os.unlink(probe)
    except OSError as exc:
        raise ValueError(f"mrblast config: {name} {path!r} is not writable ({exc})") from exc


@dataclass
class MrBlastResult:
    """Per-rank outcome of a run."""

    rank: int
    output_path: str
    units_processed: int
    partition_switches: int
    hits_emitted: int
    queries_written: int
    hits_written: int
    busy_seconds: float
    map_seconds: float
    collate_seconds: float
    reduce_seconds: float
    seed_seconds: float = 0.0
    ungapped_seconds: float = 0.0
    gapped_seconds: float = 0.0
    lookup_cache_hits: int = 0
    #: robustness counters (PR 3): where this attempt picked up, how many
    #: units were skipped as poisoned, and — filled in by the supervised
    #: wrapper — how hard the supervisor had to work to get here.
    resumed_from_iteration: int = 0
    quarantined_units: int = 0
    map_failures: int = 0
    faults_injected: int = 0
    retries: int = 0
    #: shuffle traffic this rank staged for other ranks (PR 4): exact array
    #: bytes on the columnar plane, ``approx_size`` estimates on the object
    #: plane.
    shuffle_pairs_moved: int = 0
    shuffle_bytes_moved: int = 0
    #: fused-scheduler telemetry (PR 7): scheduler rounds run on this rank
    #: (0 under the staged oracle) and the largest per-round intermediate
    #: slab any work unit held.
    fused_rounds: int = 0
    peak_slab_bytes: int = 0
    #: straggler-mitigation telemetry (PR 8): whether the run lost ranks and
    #: completed degraded, which *global* ranks were lost, and how much work
    #: the scheduler re-issued (reassigned after death / speculative copies /
    #: duplicate completions discarded).
    degraded: bool = False
    lost_ranks: tuple[int, ...] = ()
    reassigned_units: int = 0
    speculated_units: int = 0
    wasted_units: int = 0


def run_mrblast(comm: Comm, config: MrBlastConfig) -> MrBlastResult:
    """SPMD entry point: call on every rank of ``comm``."""
    from repro.mpi.ops import MIN

    log = rank_logger("core.mrblast", comm.rank)
    alias = DatabaseAlias.load(config.alias_path)
    os.makedirs(config.output_dir, exist_ok=True)
    output_path = os.path.join(config.output_dir, f"hits.rank{comm.rank:04d}.tsv")
    checkpoint = IterationCheckpoint(config.output_dir, comm.rank)
    poison = (
        PoisonList(
            os.path.join(config.output_dir, "poison.json"),
            quarantine_after=config.poison_attempts,
        )
        if config.poison_attempts > 0
        else None
    )

    # Checkpoint recovery: agree on the last iteration *every* rank finished,
    # then truncate this rank's output back to that point.
    manifest = checkpoint.load() if config.resume else {"offsets": [], "queries": [], "hits": []}
    offsets = manifest["offsets"]
    start_iteration = int(comm.allreduce(len(offsets), op=MIN))
    offsets = offsets[:start_iteration]
    queries_log = manifest["queries"][:start_iteration]
    hits_log = manifest["hits"][:start_iteration]
    if start_iteration > 0 and os.path.exists(output_path):
        keep = offsets[-1] if offsets else 0
        with open(output_path, "r+b") as fh:
            fh.truncate(keep)
        log.info("resuming from iteration %d (output at %d bytes)", start_iteration, keep)
    else:
        start_iteration = 0
        offsets, queries_log, hits_log = [], [], []
        # Fresh output file for this run; reducers append afterwards.
        open(output_path, "w").close()
        if poison is not None and not config.resume and comm.rank == 0:
            poison.clear()  # stale quarantine must not leak into a fresh run
    if poison is not None:
        comm.barrier()  # poison ledger settled before any rank reads it

    trc = comm.tracer
    if trc.enabled:
        # Always emitted, so a resumed run's trace carries the marker the
        # fault-path tests look for (0 on fresh runs).
        trc.instant("mrblast.resume", cat="driver",
                    resumed_from_iteration=start_iteration)

    mapper = MrBlastMapper(
        alias,
        config.query_blocks,
        config.options,
        hit_filter=config.hit_filter,
        lookup_cache_blocks=config.lookup_cache_blocks,
        poison=poison,
        fault_injector=config.unit_fault_injector,
    )
    reducer = MrBlastReducer(
        mapper.options,
        output_path,
        queries_written=queries_log[-1] if queries_log else 0,
        hits_written=hits_log[-1] if hits_log else 0,
    )
    schema = None
    if config.columnar:
        from repro.core.mrblast.hspcodec import hsp_schema

        schema = hsp_schema(config.id_width)
    mr = MapReduce(
        comm,
        memsize=config.memsize,
        mapstyle=config.mapstyle,
        spool_dir=config.spool_dir,
        schema=schema,
    )
    speculation = None
    if config.speculation_factor is not None:
        from repro.sched import SpeculationPolicy

        speculation = SpeculationPolicy(factor=config.speculation_factor)

    # Original input position of each query id, so per-rank files preserve
    # the input order of the queries they own (paper §III.A).
    query_order = {
        rec.id: i
        for i, rec in enumerate(
            r for block in config.query_blocks for r in block
        )
    }

    n_blocks = len(config.query_blocks)
    step = config.blocks_per_iteration or n_blocks
    iteration_starts = list(range(0, n_blocks, step))
    done_this_run = 0
    try:
        for iteration, first_block in enumerate(iteration_starts):
            if iteration < start_iteration:
                continue
            if (
                config.stop_after_iterations is not None
                and done_this_run >= config.stop_after_iterations
            ):
                break
            if trc.enabled:
                trc.begin("mrblast.iteration", cat="driver",
                          iteration=iteration, first_block=first_block)
            block_ids = range(first_block, min(first_block + step, n_blocks))
            items = build_work_items(
                n_blocks, alias.num_partitions, config.work_order, block_range=block_ids
            )
            log.debug("iteration from block %d: %d work units", first_block, len(items))
            mr.map_items(
                items,
                mapper,
                locality_key=(lambda it: it.partition_index) if config.locality_aware else None,
                speculation=speculation,
                degraded=config.degraded,
            )
            if config.combiner:
                from repro.blast.hsp import top_hits

                opts = mapper.options

                def combine(qid, hsps, kv):
                    for hsp in top_hits(hsps, opts.max_hits, opts.evalue):
                        kv.add(qid, hsp)

                mr.compress(combine)
            mr.collate()
            mr.sort_kmv_keys(key=lambda qid: query_order.get(qid, len(query_order)))
            # The reducer emits plain (query id, hit count) summaries, not
            # HSP rows — its output lives on the object plane.
            mr.reduce(reducer, out_schema=None)
            done_this_run += 1
            # Commit the iteration: output size + cumulative counts, atomically.
            offsets.append(os.path.getsize(output_path))
            queries_log.append(reducer.queries_written)
            hits_log.append(reducer.hits_written)
            checkpoint.commit(offsets, queries_log, hits_log)
            if trc.enabled:
                trc.instant("checkpoint.commit", cat="driver",
                            iteration=iteration, offset=offsets[-1],
                            hits_written=hits_log[-1])
                trc.end()
    finally:
        # Runs on *every* rank even when this rank is unwinding an injected
        # crash or AbortError — no KV/KMV spill files may outlive the job.
        timers = mr.timers
        shuffle = mr.stats.get("aggregate", {"pairs_moved": 0, "bytes_moved": 0})
        mr.close()
        mapper.release()

    return MrBlastResult(
        rank=comm.rank,
        output_path=output_path,
        units_processed=mapper.stats.units_processed,
        partition_switches=mapper.stats.partition_switches,
        hits_emitted=mapper.stats.hits_emitted,
        queries_written=reducer.queries_written,
        hits_written=reducer.hits_written,
        busy_seconds=mapper.stats.busy_seconds,
        map_seconds=timers.get("map", 0.0),
        collate_seconds=timers.get("aggregate", 0.0) + timers.get("convert", 0.0),
        reduce_seconds=timers.get("reduce", 0.0),
        seed_seconds=mapper.stats.seed_seconds,
        ungapped_seconds=mapper.stats.ungapped_seconds,
        gapped_seconds=mapper.stats.gapped_seconds,
        lookup_cache_hits=mapper.stats.lookup_cache_hits,
        resumed_from_iteration=start_iteration,
        quarantined_units=mapper.stats.quarantined_units,
        map_failures=mapper.stats.map_failures,
        shuffle_pairs_moved=shuffle["pairs_moved"],
        shuffle_bytes_moved=shuffle["bytes_moved"],
        fused_rounds=mapper.stats.fused_rounds,
        peak_slab_bytes=mapper.stats.peak_slab_bytes,
        degraded=mr.degraded_run,
        lost_ranks=mr.lost_ranks,
        reassigned_units=mr.sched_stats["reassigned"],
        speculated_units=mr.sched_stats["speculated"],
        wasted_units=mr.sched_stats["wasted"],
    )


def mrblast_spmd(
    nprocs: int, config: MrBlastConfig, trace: TraceSession | None = None
) -> list[MrBlastResult]:
    """Launch a full in-process MPI job running :func:`run_mrblast`.

    Tracing: pass a :class:`~repro.obs.trace.TraceSession` to capture the
    run, or set ``config.trace_path`` to have one created and exported as
    Chrome trace JSON automatically.  Both may be combined.
    """
    config.validate()
    if trace is None and config.trace_path:
        trace = TraceSession(nprocs)
    results = run_spmd(nprocs, run_mrblast, config, trace=trace,
                       backend=config.backend, arena_mb=config.arena_mb)
    if config.trace_path and trace is not None:
        write_chrome_trace(config.trace_path, trace)
    return results


def mrblast_supervised(
    nprocs: int,
    config: MrBlastConfig,
    *,
    fault_plan: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    op_timeout: float | None = None,
    trace: TraceSession | None = None,
) -> SupervisedOutcome:
    """Run mrblast under the supervisor: crash → detect → back off → resume.

    Attempt 1 honours ``config.resume`` as given; every relaunch forces
    ``resume=True`` so it continues from the last committed iteration (and
    sees the poison ledger of earlier attempts).  On success the per-rank
    :class:`MrBlastResult` objects carry the supervision counters.  Raises
    :class:`~repro.mpi.runtime.SupervisionExhausted` when the attempt budget
    runs out.
    """
    config.validate()
    if trace is None and config.trace_path:
        trace = TraceSession(nprocs)

    def prepare(attempt: int) -> tuple[tuple, dict]:
        cfg = config if attempt == 1 else dataclasses.replace(config, resume=True)
        return (cfg,), {}

    try:
        outcome = run_supervised(
            nprocs,
            run_mrblast,
            retry=retry,
            fault_plan=fault_plan,
            op_timeout=op_timeout,
            prepare=prepare,
            trace=trace,
            backend=config.backend,
            arena_mb=config.arena_mb,
        )
    finally:
        # Export even when supervision exhausts: the trace of a failed job
        # is exactly when you want to look at it.
        if config.trace_path and trace is not None:
            write_chrome_trace(config.trace_path, trace)
    for result in outcome.results:
        if result is None:  # rank lost in a degraded-mode run
            continue
        result.faults_injected = outcome.faults_injected
        result.retries = outcome.retries
    return outcome
