"""The paper's contributions: MR-MPI BLAST and MR-MPI batch SOM.

- :mod:`repro.core.mrblast` — Fig. 1: work units are (query block, DB
  partition) pairs dispatched master/worker; map() runs the serial engine
  and emits (query id, HSP); collate() regroups per query; reduce() sorts by
  E-value, applies top-K and appends to per-rank output files; an outer loop
  over query subsets bounds the in-flight key-value set.
- :mod:`repro.core.mrsom` — Fig. 2: the codebook is broadcast each epoch;
  map() over blocks of a memory-mapped input matrix accumulates Eq. 5's
  numerator/denominator; a direct MPI_Reduce combines them; no reduce()
  stage.
- :mod:`repro.core.baselines` — serial BLAST, an HTC-style matrix-split
  workflow, an mpiBLAST-like static DB scatter, and serial SOM, for the
  paper's comparisons.
"""

from repro.core.checkpoint import (
    CodebookCheckpoint,
    IterationCheckpoint,
    PoisonList,
)
from repro.core.mrblast.driver import (
    MrBlastConfig,
    mrblast_spmd,
    mrblast_supervised,
    run_mrblast,
)
from repro.core.mrblast.dynamic import (
    DynamicChunkConfig,
    mrblast_dynamic_spmd,
    run_mrblast_dynamic,
)
from repro.core.mrsom.driver import MrSomConfig, mrsom_spmd, mrsom_supervised, run_mrsom

__all__ = [
    "MrBlastConfig",
    "run_mrblast",
    "mrblast_spmd",
    "mrblast_supervised",
    "DynamicChunkConfig",
    "run_mrblast_dynamic",
    "mrblast_dynamic_spmd",
    "MrSomConfig",
    "run_mrsom",
    "mrsom_spmd",
    "mrsom_supervised",
    "IterationCheckpoint",
    "CodebookCheckpoint",
    "PoisonList",
]
