#!/usr/bin/env python3
"""Protein BLAST through the MapReduce pipeline (the paper's blastp case).

Builds synthetic protein families (mutated copies of ancestral sequences,
standing in for env_nr vs UniRef100), formats a partitioned protein DB, and
runs blastp with the E-value cutoff the paper used (1e-4) through mrblast
on 3 ranks.  Shows per-family recovery and the tabular (outfmt-6) output.

Run:  python examples/protein_search.py
"""

import tempfile
from pathlib import Path

from repro.bio import synthetic_protein_database
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, mrblast_spmd
from repro.core.mrblast.merge import collect_rank_hits


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_blastp_"))
    queries, db_records = synthetic_protein_database(
        n_families=4, members_per_family=3, length=220, mutation_rate=0.3, seed=4
    )
    alias_path = format_database(db_records, workdir / "db", name="uniref_demo",
                                 kind="protein", max_volume_bytes=4096)
    print(f"{len(db_records)} database proteins, {len(queries)} family queries")

    # One block per pair of queries; E-value cutoff per the paper's run.
    blocks = [queries[i : i + 2] for i in range(0, len(queries), 2)]
    options = BlastOptions.blastp(evalue=1e-4, max_hits=25)
    config = MrBlastConfig(
        alias_path=str(alias_path),
        query_blocks=blocks,
        options=options,
        output_dir=str(workdir / "out"),
    )
    results = mrblast_spmd(3, config)
    merged = collect_rank_hits([r.output_path for r in results])

    print("\nper-family recovery (every query should hit all 3 family members):")
    for qid in sorted(merged):
        subjects = [h.subject_id for h in merged[qid]]
        family = qid[-2:]
        in_family = sum(1 for s in subjects if s.startswith(f"fam{family}"))
        print(f"  {qid}: {in_family}/3 family members, 0 cross-family false hits"
              if in_family == len(subjects)
              else f"  {qid}: WARNING cross-family hits {subjects}")

    print("\ntabular output (BLAST outfmt 6):")
    some_rank_file = next(r.output_path for r in results if r.hits_written)
    with open(some_rank_file) as fh:
        for line in list(fh)[:6]:
            print("  " + line.rstrip())


if __name__ == "__main__":
    main()
