#!/usr/bin/env python3
"""Regenerate the paper's scaling story on the Ranger model (Figs. 3-6).

Prints the four Fig. 3 series, the Fig. 4 block-size crossover with its
superlinear caching region, the Fig. 5 utilisation trace as ASCII art, the
protein scaling numbers, and the Fig. 6 SOM scaling — each annotated with
the paper's anchor values.

Run:  python examples/cluster_scaling.py
"""

from repro.figures import (
    fig3_blast_scaling,
    fig4_block_size,
    fig5_utilization,
    fig6_som_scaling,
    format_table,
    protein_scaling_result,
)

CORES = (32, 64, 128, 256, 512, 1024)


def main() -> None:
    print("Fig. 3 — MR-MPI BLAST wall-clock minutes (log-log straight lines)")
    fig3 = fig3_blast_scaling(CORES)
    rows = [[name] + [f"{p.wall_minutes:.1f}" for p in pts] for name, pts in fig3.items()]
    print(format_table(["series \\ cores"] + [str(c) for c in CORES], rows))

    print("\nFig. 4 — core-minutes per 1000 queries (crossover + superlinear region)")
    fig4 = fig4_block_size(CORES)
    rows = [
        [name] + [f"{p.core_minutes_per_query * 1000:.2f}" for p in pts]
        for name, pts in fig4.items()
    ]
    print(format_table(["series \\ cores"] + [str(c) for c in CORES], rows))
    small = fig4["80 blocks x 1000"]
    eff128 = small[0].core_minutes_per_query / small[2].core_minutes_per_query
    eff1024 = small[0].core_minutes_per_query / small[5].core_minutes_per_query
    print(f"  efficiency 128 vs 32 cores: {eff128 * 100:.0f}%   (paper: 167%)")
    print(f"  efficiency 1024 vs 32 cores: {eff1024 * 100:.0f}%  (paper: 95%)")

    print("\nFig. 5 — useful CPU utilisation over the 1024-core protein run")
    trace = fig5_utilization(n_bins=60)
    bars = "".join("#" if u > 0.9 else ("+" if u > 0.5 else ".") for u in trace.utilization)
    print(f"  [{bars}]")
    print(f"  plateau {trace.plateau:.2f}; taper starts at "
          f"{trace.taper_start_fraction * 100:.0f}% of the run")

    prot = protein_scaling_result()
    print("\n§IV.A — protein BLAST scaling")
    print(f"  wall @1024 cores: {prot.wall_1024_minutes:.0f} min      (paper: 294 min)")
    print(f"  extra core-min/query at 1024 vs 512: +{prot.extra_cost_percent:.0f}%  (paper: +6%)")

    print("\nFig. 6 — batch SOM scaling (81,920 x 256-d vectors, 50x50 map)")
    fig6 = fig6_som_scaling(CORES)
    print(
        format_table(
            ["cores", "wall minutes", "efficiency vs 32"],
            [[p.cores, f"{p.wall_minutes:.2f}", f"{p.efficiency_vs_32:.3f}"] for p in fig6],
        )
    )
    print(f"  efficiency at 1024 cores: {fig6[-1].efficiency_vs_32 * 100:.0f}%  (paper: 96%)")


if __name__ == "__main__":
    main()
