#!/usr/bin/env python3
"""The paper's §V improvements, end to end.

Runs the same search three ways and compares the work distribution:

1. the paper's published pipeline (pre-split blocks, FIFO master/worker);
2. with location-aware dispatch (workers keep their DB partition);
3. fully dynamic: no pre-split files — a FASTA offset index plus a timing
   pilot choose the block size at run time, with tapered tail blocks.

Run:  python examples/dynamic_chunking.py
"""

import tempfile
from pathlib import Path

from repro.bio import shred_records, synthetic_community, synthetic_nt_database, write_fasta
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, mrblast_spmd
from repro.core.mrblast.dynamic import DynamicChunkConfig, mrblast_dynamic_spmd
from repro.core.mrblast.merge import collect_rank_hits


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_dynamic_"))
    community = synthetic_community(n_genomes=4, genome_length=2500, seed=21)
    db = synthetic_nt_database(community, n_decoys=3, decoy_length=1600, seed=22)
    alias = format_database(db, workdir / "db", "nt", kind="dna", max_volume_bytes=1500)
    reads = list(shred_records(community.genomes))[:16]
    query_fasta = workdir / "queries.fasta"
    write_fasta(reads, query_fasta)
    options = BlastOptions.blastn(evalue=1e-5, max_hits=10)
    blocks = [reads[i : i + 4] for i in range(0, len(reads), 4)]

    # 1. The paper's pipeline.
    plain = mrblast_spmd(4, MrBlastConfig(
        alias_path=str(alias), query_blocks=blocks, options=options,
        output_dir=str(workdir / "plain"), work_order="query_major",
    ))
    # 2. Location-aware dispatch.
    local = mrblast_spmd(4, MrBlastConfig(
        alias_path=str(alias), query_blocks=blocks, options=options,
        output_dir=str(workdir / "local"), work_order="query_major",
        locality_aware=True,
    ))
    # 3. Dynamic chunking from the FASTA index.
    dynamic = mrblast_dynamic_spmd(4, DynamicChunkConfig(
        alias_path=str(alias), query_fasta=str(query_fasta), options=options,
        output_dir=str(workdir / "dynamic"), target_unit_seconds=0.05,
    ))

    def switches(results):
        return sum(r.partition_switches for r in results)

    print(f"{'pipeline':<28} {'partition switches':>20}")
    print(f"{'paper (FIFO dispatch)':<28} {switches(plain):>20}")
    print(f"{'location-aware (§V)':<28} {switches(local):>20}")
    print(f"{'dynamic chunking (§V)':<28} {switches(dynamic):>20}")
    print(f"\ndynamic run chose blocks of {dynamic[0].block_size} queries "
          f"({dynamic[0].n_blocks} blocks with tapered tail)")

    hits = [collect_rank_hits([r.output_path for r in rs]) for rs in (plain, local, dynamic)]
    assert hits[0].keys() == hits[1].keys() == hits[2].keys()
    counts = [sum(len(v) for v in h.values()) for h in hits]
    assert counts[0] == counts[1] == counts[2]
    print(f"all three pipelines report identical results "
          f"({counts[0]} hits for {len(hits[0])} queries)")


if __name__ == "__main__":
    main()
