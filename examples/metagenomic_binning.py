#!/usr/bin/env python3
"""Metagenomic binning with the parallel SOM — the paper's motivating use.

"In the bioinformatics domain, SOM is a popular tool for unsupervised
clustering and semi-supervised classification of metagenomic sequences in a
multi-dimensional sequence composition space."

This example builds a synthetic metagenome (fragments from genomes with
different GC content), computes tetranucleotide frequency vectors (256-d),
writes them to the memory-mapped matrix format, trains a SOM with the
MR-MPI driver on 4 ranks, and shows that fragments from the same genome
land in coherent map regions — the "binning" the paper's group uses SOMs
for.

Run:  python examples/metagenomic_binning.py
"""

import tempfile
from collections import Counter, defaultdict
from pathlib import Path

import numpy as np

from repro.bio import composition_matrix, shred_records, synthetic_community
from repro.core import MrSomConfig, mrsom_spmd
from repro.core.mrsom.mmap_input import write_matrix_file
from repro.som import SOMGrid, best_matching_units, umatrix
from repro.som.umatrix import render_ascii


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_binning_"))

    # 1. Community with distinct GC contents -> distinct 4-mer signatures.
    community = synthetic_community(n_genomes=4, genome_length=20_000, seed=11,
                                    gc_range=(0.25, 0.75))
    fragments = list(shred_records(community.genomes, fragment=1000, overlap=0))
    labels = [f.id.split("/")[0] for f in fragments]
    print(f"{len(fragments)} fragments from {len(community.genomes)} genomes")

    # 2. Tetranucleotide composition space (the paper's input domain).
    vectors = composition_matrix(fragments, k=4)
    matrix_path = write_matrix_file(workdir / "tetra.mat", vectors)

    # 3. Parallel batch SOM on 4 in-process MPI ranks (Fig. 2 pipeline).
    grid = SOMGrid(16, 16)
    config = MrSomConfig(
        matrix_path=str(matrix_path), grid=grid, epochs=20, block_rows=8, seed=0
    )
    codebook = mrsom_spmd(4, config)[0].codebook
    print(f"trained a {grid.rows}x{grid.cols} SOM for {config.epochs} epochs on 4 ranks")

    # 4. Binning quality: fragments of one genome should dominate the map
    #    cells they fall into (cell purity), and genomes should occupy
    #    mostly disjoint regions.
    bmus = best_matching_units(vectors, codebook)
    cell_members: dict[int, list[str]] = defaultdict(list)
    for label, bmu in zip(labels, bmus):
        cell_members[int(bmu)].append(label)
    purities = [
        Counter(members).most_common(1)[0][1] / len(members)
        for members in cell_members.values()
    ]
    mean_purity = float(np.mean(purities))
    print(f"occupied cells: {len(cell_members)}; mean cell purity: {mean_purity:.2f}")
    assert mean_purity > 0.9, "binning should separate the genomes almost perfectly"

    # 5. The U-matrix shows the ridges between bins (Fig. 7/8 style).
    print("\nU-matrix (dark characters = cluster boundaries):")
    print(render_ascii(umatrix(grid, codebook)))

    # Where does each genome live?
    print("\ndominant genome per map quadrant:")
    for name in sorted(set(labels)):
        rows = [divmod(int(b), grid.cols) for lab, b in zip(labels, bmus) if lab == name]
        centroid = np.mean(rows, axis=0)
        print(f"  {name}: map centroid ({centroid[0]:.1f}, {centroid[1]:.1f})")

    # 6. Semi-supervised classification (the paper's other SOM use case):
    #    label map units from half the fragments, classify the rest.
    from repro.som import classify, label_units
    from repro.som.export import write_pgm

    order = np.random.default_rng(0).permutation(len(fragments))
    half = len(fragments) // 2
    train, test = order[:half], order[half:]
    unit_labels = label_units(
        vectors[train], [labels[i] for i in train], codebook, grid
    )
    predicted = classify(vectors[test], codebook, unit_labels, grid)
    truth = [labels[i] for i in test]
    accuracy = float(np.mean([p == t for p, t in zip(predicted, truth)]))
    print(f"\nsemi-supervised classification of held-out fragments: "
          f"{accuracy * 100:.1f}% correct")

    pgm = write_pgm(umatrix(grid, codebook), workdir / "umatrix.pgm", invert=True)
    print(f"U-matrix image written to {pgm}")


if __name__ == "__main__":
    main()
