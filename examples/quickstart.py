#!/usr/bin/env python3
"""Quickstart: the full MR-MPI BLAST pipeline in ~60 lines.

Builds a small synthetic nucleotide database, formats it into partitioned
2-bit volumes (the paper's formatdb step), shreds query genomes into
overlapping 400 bp reads, and runs the parallel search on 4 in-process MPI
ranks — map (master/worker) → collate → reduce — then cross-checks the
merged output against a serial run.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, mrblast_spmd
from repro.core.baselines import run_serial_blast
from repro.core.mrblast.merge import collect_rank_hits


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_quickstart_"))
    print(f"working directory: {workdir}")

    # 1. A synthetic metagenomic community and a database holding mutated
    #    homologs of its genomes plus unrelated decoys.
    community = synthetic_community(n_genomes=4, genome_length=3000, seed=1)
    db_records = synthetic_nt_database(community, n_decoys=3, decoy_length=2000, seed=2)

    # 2. formatdb: partition into packed volumes (~1.5 KB each here, 1 GB in
    #    the paper). The alias file carries whole-DB statistics.
    alias_path = format_database(
        db_records, workdir / "db", name="demo", kind="dna", max_volume_bytes=2048
    )
    print(f"database alias: {alias_path}")

    # 3. Shred the community genomes into 400 bp reads overlapping by 200 bp
    #    (exactly the paper's query construction) and group into blocks.
    reads = list(shred_records(community.genomes))[:16]
    blocks = [reads[i : i + 4] for i in range(0, len(reads), 4)]
    print(f"{len(reads)} reads in {len(blocks)} query blocks")

    # 4. Run MR-MPI BLAST on 4 ranks (rank 0 is the master).
    options = BlastOptions.blastn(evalue=1e-5, max_hits=10)
    config = MrBlastConfig(
        alias_path=str(alias_path),
        query_blocks=blocks,
        options=options,
        output_dir=str(workdir / "out"),
    )
    results = mrblast_spmd(4, config)
    for r in results:
        print(
            f"  rank {r.rank}: {r.units_processed} work units, "
            f"{r.partition_switches} partition switches, wrote {r.hits_written} hits"
        )

    # 5. Inspect + verify against the serial baseline.
    merged = collect_rank_hits([r.output_path for r in results])
    serial = run_serial_blast(str(alias_path), blocks, options)
    assert set(merged) == set(serial), "parallel and serial disagree!"
    print(f"\n{sum(len(v) for v in merged.values())} hits for {len(merged)} queries "
          "(identical to the serial run). Top hits:")
    for qid in sorted(merged)[:5]:
        best = merged[qid][0]
        print(
            f"  {qid:28s} -> {best.subject_id:16s} "
            f"E={best.evalue:.2e} identity={best.pident:.1f}%"
        )

    # 6. Classic pairwise view of the best alignment.
    from repro.blast import render_pairwise

    best_qid = min(merged, key=lambda q: merged[q][0].evalue)
    best = merged[best_qid][0]
    query_seq = next(r.seq for r in reads if r.id == best_qid)
    subject_seq = next(r.seq for r in db_records if r.id == best.subject_id)
    print(f"\nbest alignment ({best_qid} vs {best.subject_id}):")
    print(render_pairwise(best, query_seq, subject_seq, options))


if __name__ == "__main__":
    main()
