#!/usr/bin/env python3
"""Gene finding with translated searches (blastx + tblastn).

The paper's introduction motivates translated protein searches: annotation
runs "for the protein sequences ... predicted on such reads".  This example
works both directions on synthetic data:

- **tblastn**: known proteins located inside uncharacterised DNA contigs
  (which strand, which frame, which coordinates);
- **blastx**: a raw DNA read identified by translating it against the
  protein database.

Run:  python examples/gene_finding.py
"""

import tempfile
from pathlib import Path

from repro.bio import SeqRecord, random_genome, random_protein
from repro.bio.seq import CODON_TABLE, reverse_complement
from repro.blast import (
    BlastOptions,
    BlastxEngine,
    DatabaseAlias,
    TblastnEngine,
    format_database,
)


def back_translate(protein: str) -> str:
    by_aa: dict[str, str] = {}
    for codon, aa in sorted(CODON_TABLE.items()):
        by_aa.setdefault(aa, codon)
    return "".join(by_aa[a] for a in protein)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_genes_"))
    proteins = {f"enzyme{i}": random_protein(130, seed_or_rng=i) for i in range(3)}

    # Contigs hiding two of the genes (one per strand) among random DNA.
    contigs = [
        SeqRecord(
            "contig1",
            random_genome(90, seed_or_rng=7)
            + back_translate(proteins["enzyme0"])
            + random_genome(60, seed_or_rng=8),
        ),
        SeqRecord(
            "contig2",
            reverse_complement(
                random_genome(45, seed_or_rng=9)
                + back_translate(proteins["enzyme1"])
                + random_genome(75, seed_or_rng=10)
            ),
        ),
    ]

    # --- tblastn: protein queries vs the DNA contigs -----------------------
    contig_alias = format_database(contigs, workdir / "contigs", "contigs", kind="dna")
    contig_part = DatabaseAlias.load(contig_alias).open_partition(0)
    tengine = TblastnEngine(BlastOptions.blastp(evalue=1e-10))
    queries = [SeqRecord(name, seq) for name, seq in proteins.items()]
    print("tblastn — locating proteins in contigs:")
    hits = tengine.search_block(queries, contig_part)
    for h in hits:
        strand = "+" if h.strand == 1 else "-"
        print(
            f"  {h.query_id:9s} found in {h.subject_id} at nt {h.s_start}-{h.s_end} "
            f"(strand {strand}, frame {h.frame:+d}, {h.pident:.0f}% identity)"
        )
    found = {h.query_id for h in hits}
    assert found == {"enzyme0", "enzyme1"}, "enzyme2 is absent from the contigs"
    print("  enzyme2   not found (correct: it is not in the contigs)\n")

    # --- blastx: a DNA read vs the protein database ------------------------
    prot_alias = format_database(
        [SeqRecord(n, s) for n, s in proteins.items()], workdir / "prots", "prots",
        kind="protein",
    )
    prot_part = DatabaseAlias.load(prot_alias).open_partition(0)
    xengine = BlastxEngine(BlastOptions.blastx(evalue=1e-10))
    read = SeqRecord("read_x", "GT" + back_translate(proteins["enzyme2"])[30:330])
    print("blastx — identifying a raw read:")
    for h in xengine.search_block([read], prot_part):
        print(
            f"  {h.query_id} -> {h.subject_id} (frame {h.frame:+d}, "
            f"E={h.evalue:.1e}, covers nt {h.q_start}-{h.q_end} of the read)"
        )


if __name__ == "__main__":
    main()
