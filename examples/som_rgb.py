#!/usr/bin/env python3
"""Figure 7's visual test, in the terminal: SOM clustering of RGB colours.

Trains a SOM on random RGB vectors with the parallel driver, then renders
(a) the colour map itself as ANSI background colours and (b) the U-matrix
as ASCII shading — the same pair of panels the paper's Fig. 7 shows.

Run:  python examples/som_rgb.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import MrSomConfig, mrsom_spmd
from repro.core.mrsom.mmap_input import write_matrix_file
from repro.som import SOMGrid, quantization_error, topographic_error, umatrix
from repro.som.umatrix import render_ascii


def ansi_map(codebook: np.ndarray, grid: SOMGrid) -> str:
    """Render each neuron as a 24-bit colour block."""
    lines = []
    weights = np.clip(codebook.reshape(grid.rows, grid.cols, 3), 0.0, 1.0)
    for r in range(grid.rows):
        cells = []
        for c in range(grid.cols):
            red, green, blue = (weights[r, c] * 255).astype(int)
            cells.append(f"\x1b[48;2;{red};{green};{blue}m  \x1b[0m")
        lines.append("".join(cells))
    return "\n".join(lines)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_rgb_"))
    rng = np.random.default_rng(0)
    data = rng.random((100, 3))  # the paper's 100 random RGB feature vectors

    grid = SOMGrid(20, 20)  # terminal-sized stand-in for the paper's 50x50
    matrix_path = write_matrix_file(workdir / "rgb.mat", data)
    config = MrSomConfig(matrix_path=str(matrix_path), grid=grid, epochs=30, block_rows=10)
    codebook = mrsom_spmd(4, config)[0].codebook

    print("colour map (smooth patches = correct clustering):")
    print(ansi_map(codebook, grid))

    print("\nU-matrix (dark = cluster boundary):")
    print(render_ascii(umatrix(grid, codebook)))

    qe = quantization_error(data, codebook)
    te = topographic_error(data, codebook, grid)
    print(f"\nquantization error {qe:.4f}, topographic error {te:.4f}")

    # Persist the two Fig. 7 panels as image files.
    from repro.som import codebook_to_rgb, write_pgm, write_ppm

    ppm = write_ppm(codebook_to_rgb(grid, codebook, scale=8), workdir / "fig7_colors.ppm")
    pgm = write_pgm(umatrix(grid, codebook), workdir / "fig7_umatrix.pgm", invert=True)
    print(f"images written: {ppm} and {pgm}")


if __name__ == "__main__":
    main()
