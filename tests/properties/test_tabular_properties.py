"""Property-based round-trip of the tabular format over arbitrary HSPs."""

import io

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.blast.hsp import HSP
from repro.blast.tabular import format_tabular, parse_tabular


@st.composite
def hsps(draw):
    strand = draw(st.sampled_from([1, -1]))
    q_start = draw(st.integers(0, 5000))
    q_span = draw(st.integers(1, 2000))
    s_start = draw(st.integers(0, 5000))
    # A one-base subject span prints s_first == s_last, making the strand
    # unrecoverable from the 12-column format (true of real BLAST output
    # too) — keep minus-strand spans >= 2.
    s_span = draw(st.integers(2 if strand == -1 else 1, 2000))
    align_len = max(q_span, s_span) + draw(st.integers(0, 50))
    identities = draw(st.integers(0, align_len))
    gaps = draw(st.integers(0, align_len - identities))
    return HSP(
        query_id=draw(st.text(alphabet="abcXYZ019_.|/", min_size=1, max_size=24)),
        subject_id=draw(st.text(alphabet="abcXYZ019_.", min_size=1, max_size=24)),
        score=draw(st.integers(1, 10**6)),
        bit_score=draw(st.floats(min_value=0.1, max_value=1e5, allow_nan=False)),
        evalue=draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
        q_start=q_start,
        q_end=q_start + q_span,
        s_start=s_start,
        s_end=s_start + s_span,
        identities=identities,
        align_len=align_len,
        gaps=gaps,
        strand=strand,
    )


@given(st.lists(hsps(), min_size=1, max_size=10))
@settings(max_examples=120, deadline=None)
def test_tabular_roundtrip_preserves_everything_recoverable(records):
    # Tab is the column separator; ids cannot contain it (enforced upstream
    # by FASTA id rules), and these generated ids never do.
    text = format_tabular(records)
    parsed = list(parse_tabular(io.StringIO(text)))
    assert len(parsed) == len(records)
    for orig, back in zip(records, parsed):
        assert back.query_id == orig.query_id
        assert back.subject_id == orig.subject_id
        assert back.q_start == orig.q_start and back.q_end == orig.q_end
        assert back.s_start == orig.s_start and back.s_end == orig.s_end
        assert back.strand == orig.strand
        assert back.align_len == orig.align_len
        assert back.gaps == orig.gaps
        assert abs(back.bit_score - orig.bit_score) <= 0.05 + 1e-9
        if orig.evalue > 0:
            assert back.evalue > 0
            # >= 1e-3 prints with 4 significant digits, below with 7.
            tol = 1e-3 if orig.evalue >= 1e-3 else 1e-5
            assert abs(back.evalue - orig.evalue) / orig.evalue < tol
        else:
            assert back.evalue == 0.0
        # identities round-trip through pident with bounded error
        assert abs(back.identities - orig.identities) <= max(
            1, orig.align_len * 5e-5
        )


@given(hsps())
@settings(max_examples=100, deadline=None)
def test_every_line_has_twelve_columns(h):
    from repro.blast.tabular import format_tabular_line

    assert len(format_tabular_line(h).split("\t")) == 12
