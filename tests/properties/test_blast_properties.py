"""Property-based tests for the BLAST substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bio.alphabet import DNA
from repro.blast.extend import ungapped_extend
from repro.blast.formatdb import pack_2bit, unpack_2bit
from repro.blast.gapped import extend_gapped
from repro.blast.karlin import KarlinParams
from repro.blast.matrices import nucleotide_matrix
from repro.blast.reference import smith_waterman_score
from repro.blast.statistics import evalue

NT = nucleotide_matrix(1, -2)

dna_text = st.text(alphabet="ACGT", min_size=0, max_size=200)
dna_seq = st.text(alphabet="ACGT", min_size=30, max_size=120)


@given(dna_text)
@settings(max_examples=100, deadline=None)
def test_pack_unpack_roundtrip(seq):
    codes = DNA.encode(seq)
    assert DNA.decode(unpack_2bit(pack_2bit(codes), len(seq))) == seq


@given(dna_seq, dna_seq, st.integers(0, 15))
@settings(max_examples=50, deadline=None)
def test_ungapped_extension_never_beats_smith_waterman(q_text, s_text, offset):
    """Any ungapped local alignment scores at most the SW optimum."""
    q = DNA.encode(q_text)
    s = DNA.encode(s_text)
    word = 8
    q_pos = min(offset, q.size - word)
    s_pos = min(offset, s.size - word)
    assume(q_pos >= 0 and s_pos >= 0)
    u = ungapped_extend(q, s, q_pos, s_pos, word, NT, xdrop=15)
    sw = smith_waterman_score(q, s, NT, gap_open=5, gap_extend=2)
    # The seed word itself may score negative (mismatches); SW floors at 0.
    assert u.score <= max(sw, u.score if u.score < 0 else sw) or u.score <= sw
    if u.score > 0:
        assert u.score <= sw


@given(dna_seq, dna_seq, st.integers(0, 25))
@settings(max_examples=40, deadline=None)
def test_gapped_extension_bounded_by_optimum_and_consistent(q_text, s_text, seed_pos):
    q = DNA.encode(q_text)
    s = DNA.encode(s_text)
    qp = min(seed_pos, q.size - 1)
    sp = min(seed_pos, s.size - 1)
    g = extend_gapped(q, s, qp, sp, NT, 5, 2, xdrop=30, band=32)
    sw = smith_waterman_score(q, s, NT, gap_open=5, gap_extend=2)
    if g is not None:
        assert 0 < g.score <= sw
        # Coordinate sanity: spans bracket the seed and fit the sequences.
        assert 0 <= g.q_start <= qp <= g.q_end <= q.size
        assert 0 <= g.s_start <= sp <= g.s_end <= s.size
        # Alignment accounting: columns = identities+mismatches+gap columns.
        assert g.align_len >= max(g.q_end - g.q_start, g.s_end - g.s_start)
        assert 0 <= g.identities <= g.align_len
        assert 0 <= g.gaps <= g.align_len
        # Gap columns explain the span difference exactly.
        assert g.gaps >= abs((g.q_end - g.q_start) - (g.s_end - g.s_start))


@given(dna_seq)
@settings(max_examples=30, deadline=None)
def test_self_alignment_is_perfect(seq_text):
    q = DNA.encode(seq_text)
    mid = q.size // 2
    g = extend_gapped(q, q, mid, mid, NT, 5, 2, xdrop=25, band=16)
    assert g is not None
    assert g.score == q.size  # +1 per matched base
    assert g.identities == q.size
    assert g.gaps == 0


@given(
    st.integers(10, 10_000),       # raw score
    st.integers(50, 5_000),        # query length
    st.integers(10_000, 10**9),    # db length
    st.integers(10, 10**6),        # db sequences
)
@settings(max_examples=100, deadline=None)
def test_evalue_monotonicity(score, qlen, dblen, dbseqs):
    params = KarlinParams(lam=0.267, K=0.041, H=0.14, gapped=True)
    # Physical regime: average DB sequence at least 50 residues (below
    # that the length-adjustment clamp pins the effective DB length and
    # E-values flatten out, which is fine but not monotone to the epsilon).
    assume(dbseqs * 50 <= dblen)
    e = evalue(score, params, qlen, dblen, dbseqs)
    assert e >= 0
    # Higher score -> smaller E-value.
    assert evalue(score + 10, params, qlen, dblen, dbseqs) <= e
    # Bigger database -> bigger E-value.
    assert evalue(score, params, qlen, dblen * 2, dbseqs) >= e
