"""Property-based tests for the tracing layer.

Hypothesis generates random "rank programs" — sequences of begin / end /
instant operations — and executes them against tracers on deterministic
clocks.  Whatever the program, the resulting trace must be well-formed:
timestamps monotonic per rank, ``B``/``E`` balanced after unwind, span ids
unique across ranks, and the whole pipeline (export included) must be a
pure function of the program — identical programs give identical traces.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.trace import TickClock, Tracer, TraceSession

# One program step: begin a span, end the innermost span (a no-op when
# nothing is open), or record an instant.  Attribute values stay scalar,
# matching what the exporter permits.
_names = st.sampled_from(["map", "reduce", "exchange", "unit", "io"])
_attr_values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.booleans(),
)
_attrs = st.dictionaries(st.sampled_from(["a", "b", "c"]), _attr_values, max_size=2)
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("begin"), _names, _attrs),
        st.tuples(st.just("end"), st.none(), _attrs),
        st.tuples(st.just("instant"), _names, _attrs),
    ),
    max_size=80,
)
_programs = st.lists(_steps, min_size=1, max_size=4)  # one program per rank


def run_program(trc, steps):
    for op, name, attrs in steps:
        if op == "begin":
            trc.begin(name, cat="p", **attrs)
        elif op == "end":
            if trc.open_spans:
                trc.end(**attrs)
        else:
            trc.instant(name, cat="p", **attrs)
    trc.unwind()


def run_session(programs, max_events=1_000_000, spill_dir=None):
    session = TraceSession(len(programs), clock=None,
                          max_events_per_rank=max_events, spill_dir=spill_dir)
    for rank, steps in enumerate(programs):
        trc = session.tracer(rank)
        trc.clock = TickClock()  # deterministic per-rank virtual time
        run_program(trc, steps)
    return session


@given(_programs)
@settings(max_examples=60, deadline=None)
def test_any_program_yields_wellformed_trace(programs):
    session = run_session(programs)
    for trc in session.tracers:
        events = list(trc.iter_events())
        # Per-rank timestamps never run backwards.
        ts = [e[1] for e in events]
        assert ts == sorted(ts)
        # unwind() left everything balanced: B and E counts match and no
        # E ever outruns the Bs before it.
        depth = 0
        for ph, *_ in events:
            if ph == "B":
                depth += 1
            elif ph == "E":
                depth -= 1
                assert depth >= 0
        assert depth == 0
        assert trc.open_spans == []


@given(_programs)
@settings(max_examples=60, deadline=None)
def test_span_ids_never_collide_across_ranks(programs):
    session = run_session(programs)
    seen = set()
    for trc in session.tracers:
        for ph, _ts, sid, *_ in trc.iter_events():
            if ph == "B":
                assert sid not in seen
                seen.add(sid)


@given(_programs)
@settings(max_examples=40, deadline=None)
def test_identical_programs_give_identical_traces(programs):
    """Determinism: the trace (and its export) is a pure function of the
    program under a virtual clock — the seed-reproducibility guarantee."""
    a = run_session(programs)
    b = run_session(programs)
    for ta, tb in zip(a.tracers, b.tracers):
        assert list(ta.iter_events()) == list(tb.iter_events())
    assert json.dumps(chrome_trace(a), sort_keys=True) == \
        json.dumps(chrome_trace(b), sort_keys=True)


@given(_programs)
@settings(max_examples=40, deadline=None)
def test_export_of_any_program_validates(programs):
    doc = chrome_trace(run_session(programs))
    assert validate_chrome_trace(doc) == []


@given(_steps, st.integers(min_value=1, max_value=16))
@settings(max_examples=40, deadline=None)
def test_bounded_buffer_never_exceeds_cap(steps, cap):
    unbounded = Tracer(0, clock=TickClock())
    bounded = Tracer(0, clock=TickClock(), max_events=cap)
    run_program(unbounded, steps)
    run_program(bounded, steps)
    assert len(bounded.events) <= cap
    # Nothing silently vanishes: kept + dropped = everything emitted, and
    # what was kept is a prefix of the unbounded stream.
    total = len(list(unbounded.iter_events()))
    assert len(bounded.events) + bounded.dropped_events == total
    assert bounded.events == list(unbounded.iter_events())[: len(bounded.events)]


@given(steps=_steps)
@settings(max_examples=40, deadline=None)
def test_spill_roundtrip_preserves_event_stream(steps, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("spill")
    unbounded = Tracer(0, clock=TickClock())
    spilling = Tracer(0, clock=TickClock(), max_events=4,
                      spill_path=tmp / "t.jsonl")
    run_program(unbounded, steps)
    run_program(spilling, steps)
    assert spilling.dropped_events == 0
    assert list(spilling.iter_events()) == list(unbounded.iter_events())
