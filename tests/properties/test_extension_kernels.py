"""Parity properties: batched/banded extension kernels vs their retained oracles.

The PR-2 contract is bit-identity, not approximation: every complete row of
:func:`batch_ungapped_extend` must equal :func:`ungapped_extend` field for
field, and :func:`extend_gapped` (band-compressed int32) must reproduce
:func:`reference_extend_gapped` (dense float32) including coordinates and
operation strings.  Random sequences here are deliberately homolog-biased so
the gapped band actually fills, plus directed band-edge and all-negative
cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio import mutate_dna, random_genome, random_protein
from repro.bio.alphabet import DNA, PROTEIN
from repro.blast.extend import batch_ungapped_extend, ungapped_extend
import repro.blast.gapped as gapped_mod
from repro.blast.gapped import (
    extend_gapped,
    extend_gapped_batch,
    reference_extend_gapped,
)
from repro.blast.matrices import BLOSUM62, nucleotide_matrix

NT = nucleotide_matrix(1, -2)

dna_seq = st.text(alphabet="ACGT", min_size=30, max_size=150)


def _scalar_tuple(q, s, qp, sp, word, matrix, xdrop):
    u = ungapped_extend(q, s, qp, sp, word, matrix, xdrop)
    return (u.score, u.q_start, u.q_end, u.s_start, u.s_end)


def _batch_row(ext, r):
    return (
        int(ext.score[r]),
        int(ext.q_start[r]),
        int(ext.q_end[r]),
        int(ext.s_start[r]),
        int(ext.s_end[r]),
    )


class TestBatchedUngappedParity:
    @given(
        dna_seq,
        st.integers(0, 2**31 - 1),
        st.sampled_from([2, 4, 8, 16, 64]),
        st.floats(1.0, 25.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_complete_rows_match_scalar(self, base, seed, window, xdrop):
        """Every complete row is bit-identical; incomplete rows lower-bound."""
        word = 8
        q = DNA.encode(base)
        s = DNA.encode(mutate_dna(base, 0.10, seed_or_rng=seed))
        rng = np.random.default_rng(seed)
        n_hits = 25
        qp = rng.integers(0, q.size - word + 1, size=n_hits)
        sp = rng.integers(0, s.size - word + 1, size=n_hits)
        # Capped at the initial window: rows that outrun it must say so.
        capped = batch_ungapped_extend(
            q, s, qp, sp, word, NT, xdrop, window=window, max_window=window
        )
        # Default escalation: every row terminates in-batch.
        ext = batch_ungapped_extend(q, s, qp, sp, word, NT, xdrop, window=window)
        assert ext.complete.all()
        for r in range(n_hits):
            scalar = _scalar_tuple(q, s, int(qp[r]), int(sp[r]), word, NT, xdrop)
            assert _batch_row(ext, r) == scalar
            if capped.complete[r]:
                assert _batch_row(capped, r) == scalar
            else:
                # Window truncation can only lose score, never invent it.
                assert int(capped.score[r]) <= scalar[0]

    @given(st.integers(0, 2**31 - 1), st.sampled_from([1, 2, 3, 7]))
    @settings(max_examples=40, deadline=None)
    def test_protein_rows_match_scalar(self, seed, window):
        rng = np.random.default_rng(seed)
        base = random_protein(120, seed_or_rng=seed)
        q = PROTEIN.encode(base)
        chars = list(base)
        aa = "ARNDCQEGHILKMFPSTWYV"
        for i in range(len(chars)):
            if rng.random() < 0.2:
                chars[i] = aa[rng.integers(0, 20)]
        s = PROTEIN.encode("".join(chars))
        word = 3
        qp = rng.integers(0, q.size - word + 1, size=15)
        sp = rng.integers(0, s.size - word + 1, size=15)
        ext = batch_ungapped_extend(q, s, qp, sp, word, BLOSUM62, 16.0, window=window)
        assert ext.complete.all()
        for r in range(15):
            assert _batch_row(ext, r) == _scalar_tuple(
                q, s, int(qp[r]), int(sp[r]), word, BLOSUM62, 16.0
            )

    def test_all_negative_scores_terminate_immediately(self):
        """No-similarity pairs: the X-drop fires inside any window."""
        q = DNA.encode("A" * 80)
        s = DNA.encode("C" * 80)
        qp = np.array([10, 30, 50])
        sp = np.array([12, 28, 55])
        # With -2 per step and xdrop=5 the drop proves itself at step 3,
        # so any window of at least 3 terminates every row in-batch.
        for window in (3, 64):
            ext = batch_ungapped_extend(q, s, qp, sp, 8, NT, xdrop=5.0, window=window)
            assert ext.complete.all()
            for r in range(3):
                assert _batch_row(ext, r) == _scalar_tuple(
                    q, s, int(qp[r]), int(sp[r]), 8, NT, 5.0
                )
                # Pure mismatch: no gain on either side, seed word only.
                assert int(ext.q_end[r]) - int(ext.q_start[r]) == 8

    def test_boundary_hits_are_complete(self):
        """Hits whose reach ends exactly at a sequence boundary complete
        in-window: the pad forces the drop at the edge, not past it."""
        seq = DNA.encode(random_genome(100, seed_or_rng=7))
        word = 11
        # Seed at the very start and very end: one side has avail == 0.
        qp = np.array([0, 100 - word])
        sp = np.array([0, 100 - word])
        ext = batch_ungapped_extend(seq, seq, qp, sp, word, NT, 20.0, window=128)
        assert ext.complete.all()
        for r in range(2):
            assert _batch_row(ext, r) == _scalar_tuple(
                seq, seq, int(qp[r]), int(sp[r]), word, NT, 20.0
            )
            assert (int(ext.q_start[r]), int(ext.q_end[r])) == (0, 100)


def _assert_gapped_parity(q, s, q_seed, s_seed, matrix, go, ge, xdrop, band):
    got = extend_gapped(q, s, q_seed, s_seed, matrix, go, ge, xdrop, band)
    want = reference_extend_gapped(q, s, q_seed, s_seed, matrix, go, ge, xdrop, band)
    # Frozen dataclass equality covers score, all four coordinates,
    # identities, align_len, gaps, and the ops string.
    assert got == want


class TestBandedGappedParity:
    @given(
        dna_seq,
        st.integers(0, 2**31 - 1),
        st.integers(1, 48),
        st.floats(5.0, 60.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_dna_homologs(self, base, seed, band, xdrop):
        q = DNA.encode(base)
        s = DNA.encode(mutate_dna(base, 0.08, seed_or_rng=seed))
        rng = np.random.default_rng(seed)
        q_seed = int(rng.integers(0, q.size + 1))
        s_seed = int(rng.integers(0, s.size + 1))
        _assert_gapped_parity(q, s, q_seed, s_seed, NT, 5, 2, xdrop, band)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 32))
    @settings(max_examples=30, deadline=None)
    def test_protein_homologs(self, seed, band):
        rng = np.random.default_rng(seed)
        base = random_protein(130, seed_or_rng=seed)
        chars = list(base)
        aa = "ARNDCQEGHILKMFPSTWYV"
        for i in range(len(chars)):
            if rng.random() < 0.15:
                chars[i] = aa[rng.integers(0, 20)]
        q = PROTEIN.encode(base)
        s = PROTEIN.encode("".join(chars))
        mid = q.size // 2
        _assert_gapped_parity(q, s, mid, mid, BLOSUM62, 11, 1, 38.0, band)

    @given(dna_seq, st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_unrelated_sequences(self, base, seed):
        """Unrelated pairs: both kernels must agree even when the answer is
        None or a tiny chance alignment."""
        q = DNA.encode(base)
        s = DNA.encode(random_genome(len(base), seed_or_rng=seed))
        _assert_gapped_parity(q, s, q.size // 2, s.size // 2, NT, 5, 2, 20.0, 16)

    def test_all_negative_is_none_in_both(self):
        q = DNA.encode("A" * 40)
        s = DNA.encode("C" * 40)
        for band in (1, 8, 48):
            got = extend_gapped(q, s, 20, 20, NT, 5, 2, 10.0, band)
            want = reference_extend_gapped(q, s, 20, 20, NT, 5, 2, 10.0, band)
            assert got is None and want is None

    def test_band_edge_insertion(self):
        """An insertion of exactly ``band`` needs the outermost diagonal;
        one of ``band + 1`` does not fit.  Parity must hold right at the
        edge in both regimes."""
        left = random_genome(60, seed_or_rng=30)
        right = random_genome(60, seed_or_rng=31)
        for gap_len, band in [(8, 8), (9, 8), (1, 1), (2, 1)]:
            insert = random_genome(gap_len, seed_or_rng=32 + gap_len)
            q = DNA.encode(left + right)
            s = DNA.encode(left + insert + right)
            _assert_gapped_parity(q, s, 5, 5, NT, 5, 2, 200.0, band)

    def test_query_longer_than_subject(self):
        """Rows past the subject end exercise the tail masking and the
        extended s_pad sizing."""
        base = random_genome(120, seed_or_rng=40)
        q = DNA.encode(base)
        s = DNA.encode(base[:35])
        _assert_gapped_parity(q, s, 0, 0, NT, 5, 2, 80.0, 12)
        _assert_gapped_parity(q, s, 10, 10, NT, 5, 2, 80.0, 4)

    def test_seed_at_sequence_ends(self):
        """Degenerate halves: one side of the seed is empty."""
        base = random_genome(50, seed_or_rng=41)
        q = DNA.encode(base)
        s = DNA.encode(mutate_dna(base, 0.05, seed_or_rng=42))
        for q_seed, s_seed in [(0, 0), (q.size, s.size), (0, s.size)]:
            _assert_gapped_parity(q, s, q_seed, s_seed, NT, 5, 2, 30.0, 16)


def _random_seed_batch(rng, n_seeds):
    """Mixed-depth seed batch: homologous pairs, unrelated pairs, and
    edge seeds, with wildly different half depths so the lockstep chunks
    mix long and short halves."""
    seeds = []
    for t in range(n_seeds):
        length = int(rng.integers(20, 220))
        base = random_genome(length, seed_or_rng=int(rng.integers(2**31)))
        q = DNA.encode(base)
        if rng.random() < 0.25:
            s = DNA.encode(random_genome(length, seed_or_rng=int(rng.integers(2**31))))
        else:
            s = DNA.encode(
                mutate_dna(base, float(rng.uniform(0.02, 0.15)),
                           seed_or_rng=int(rng.integers(2**31)))
            )
        if t % 7 == 0:  # edge seeds: one half empty
            q_seed, s_seed = (0, 0) if t % 14 else (int(q.size), int(s.size))
        else:
            q_seed = int(rng.integers(0, q.size + 1))
            s_seed = int(rng.integers(0, s.size + 1))
        seeds.append((q, s, q_seed, s_seed))
    return seeds


class TestBatchedGappedParity:
    """``extend_gapped_batch`` vs the per-seed kernels, seed for seed."""

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_batch_matches_per_seed_reference(self, seed):
        rng = np.random.default_rng(seed)
        seeds = _random_seed_batch(rng, 25)
        got = extend_gapped_batch(seeds, NT, 5, 2, 25.0, 24)
        want = [
            reference_extend_gapped(q, s, qp, sp, NT, 5, 2, 25.0, 24)
            for q, s, qp, sp in seeds
        ]
        assert got == want

    def test_chunked_batches_match_unchunked(self, monkeypatch):
        """Force many tiny lockstep chunks: results must not depend on how
        the batch is cut or reordered internally."""
        rng = np.random.default_rng(99)
        seeds = _random_seed_batch(rng, 30)
        whole = extend_gapped_batch(seeds, NT, 5, 2, 30.0, 16)
        monkeypatch.setattr(gapped_mod, "_CHUNK_HALVES", 3)
        chunked = extend_gapped_batch(seeds, NT, 5, 2, 30.0, 16)
        assert chunked == whole
        assert whole == [
            reference_extend_gapped(q, s, qp, sp, NT, 5, 2, 30.0, 16)
            for q, s, qp, sp in seeds
        ]

    def test_protein_batch(self):
        rng = np.random.default_rng(5)
        aa = "ARNDCQEGHILKMFPSTWYV"
        seeds = []
        for t in range(12):
            base = random_protein(int(rng.integers(40, 200)),
                                  seed_or_rng=int(rng.integers(2**31)))
            chars = list(base)
            for i in range(len(chars)):
                if rng.random() < 0.15:
                    chars[i] = aa[rng.integers(0, 20)]
            q = PROTEIN.encode(base)
            s = PROTEIN.encode("".join(chars))
            seeds.append((q, s, int(q.size // 2), int(s.size // 2)))
        got = extend_gapped_batch(seeds, BLOSUM62, 11, 1, 38.0, 32)
        want = [
            reference_extend_gapped(q, s, qp, sp, BLOSUM62, 11, 1, 38.0, 32)
            for q, s, qp, sp in seeds
        ]
        assert got == want

    def test_empty_batch(self):
        assert extend_gapped_batch([], NT, 5, 2, 20.0, 8) == []
