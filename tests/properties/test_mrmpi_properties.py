"""Property-based tests for the MapReduce-MPI stores and hashing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mrmpi.hashing import key_bytes, stable_hash
from repro.mrmpi.keyvalue import KeyValue
from repro.mrmpi.keymultivalue import convert_kv_to_kmv

# Canonical key values: bytes, str, int, float, bool and shallow tuples.
_scalar_keys = st.one_of(
    st.binary(max_size=20),
    st.text(max_size=20),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
)
keys = st.one_of(_scalar_keys, st.tuples(_scalar_keys, _scalar_keys))
values = st.one_of(st.binary(max_size=40), st.integers(), st.text(max_size=20))


@given(st.lists(st.tuples(keys, values), max_size=60))
@settings(max_examples=60, deadline=None)
def test_out_of_core_kv_iterates_identically(pairs):
    """A KV store paging to disk yields exactly the in-memory sequence."""
    big = KeyValue(pagesize=1 << 24)
    small = KeyValue(pagesize=64)  # spill after nearly every add
    big.add_multi(pairs)
    small.add_multi(pairs)
    assert list(big) == list(small)
    assert len(big) == len(small) == len(pairs)


@given(st.lists(st.tuples(keys, values), max_size=60), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_convert_groups_every_value_exactly_once(pairs, nbuckets):
    kv = KeyValue(pagesize=128)  # force the out-of-core convert path
    kv.add_multi(pairs)
    kmv = convert_kv_to_kmv(kv, pagesize=128, nbuckets=nbuckets)
    regrouped: dict[bytes, list] = {}
    for key, vals in kmv:
        kb = key_bytes(key)
        assert kb not in regrouped, "key emitted twice"
        regrouped[kb] = list(vals)
    expected: dict[bytes, list] = {}
    for k, v in pairs:
        expected.setdefault(key_bytes(k), []).append(v)
    assert regrouped == expected


@given(keys, keys)
@settings(max_examples=200, deadline=None)
def test_key_encoding_injective_within_and_across_types(a, b):
    """Different canonical keys must never share an encoding (hash inputs)."""
    if key_bytes(a) == key_bytes(b):
        # Only permissible when the keys are interchangeable as dict keys
        # of the same encoded class (e.g. equal tuples).
        assert type(a) is type(b) or (
            isinstance(a, (int, bool)) and isinstance(b, (int, bool))
        )
        if not isinstance(a, tuple):
            assert a == b or (a != a)  # NaN never reaches here (filtered)


@given(keys)
@settings(max_examples=200, deadline=None)
def test_stable_hash_nonnegative_and_deterministic(k):
    h1 = stable_hash(k)
    h2 = stable_hash(k)
    assert h1 == h2
    assert 0 <= h1 < 2**64


@given(st.lists(keys, min_size=1, max_size=50), st.integers(2, 16))
@settings(max_examples=60, deadline=None)
def test_hash_partitioning_is_a_function_of_key_only(ks, nprocs):
    """Same key -> same destination rank, whatever order it is seen in."""
    first_pass = {key_bytes(k): stable_hash(k) % nprocs for k in ks}
    second_pass = {key_bytes(k): stable_hash(k) % nprocs for k in reversed(ks)}
    assert first_pass == second_pass
