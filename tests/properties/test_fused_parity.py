"""Property suite pinning the fused scheduler to the staged oracle.

The fused streaming pass (``BlastOptions.fused``, the default) must produce
HSP output bit-identical to the retained per-subject staged scheduler —
same scores, coordinates, E-values, identities/gap accounting (the
traceback-derived fields) and same output order — for every program that
runs through the engine, at any ``fused_slab_rows`` bound (including 1,
which forces maximal subject streaming, and a bound larger than any
workload, which opens every subject at once).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.alphabet import DNA, PROTEIN
from repro.bio.seq import SeqRecord
from repro.blast.engine import make_engine
from repro.blast.options import BlastOptions
from repro.blast.tblastn import TblastnEngine

DNA_ALPHABET = "ACGT"
AA_ALPHABET = "ACDEFGHIKLMNPQRSTVWY"

SLAB_ROWS = st.sampled_from([1, 13, 65536])


class _ArrayPartition:
    """Minimal in-memory stand-in for DbPartition (iteration + stats)."""

    def __init__(self, records, kind):
        enc = DNA if kind == "dna" else PROTEIN
        self.kind = kind
        self.name = "mem"
        self.ids = [r.id for r in records]
        self.lengths = [len(r.seq) for r in records]
        self._codes = [(r.id, enc.encode(r.seq)) for r in records]
        self.total_length = sum(self.lengths)
        self.num_seqs = len(records)

    def __iter__(self):
        return iter(self._codes)


@st.composite
def _family(draw, alphabet, min_len=70, max_len=140, n_subjects=4, n_queries=2):
    """Homologous query/subject sets: mutated copies of one ancestor.

    Point mutations and query slicing keep real word hits (and therefore
    real extensions, admissions and culling decisions) flowing through
    both schedulers on nearly every example.
    """
    anc = draw(st.text(alphabet=alphabet, min_size=min_len, max_size=max_len))

    def mutate(seed_tag):
        muts = draw(
            st.lists(
                st.tuples(st.integers(0, len(anc) - 1), st.sampled_from(alphabet)),
                max_size=6,
            )
        )
        s = list(anc)
        for pos, ch in muts:
            s[pos] = ch
        return "".join(s)

    subjects = [SeqRecord(f"s{i}", mutate(i)) for i in range(n_subjects)]
    queries = []
    for i in range(n_queries):
        start = draw(st.integers(0, max(len(anc) - 40, 0)))
        length = draw(st.integers(30, len(anc)))
        queries.append(SeqRecord(f"q{i}", mutate(100 + i)[start : start + length]))
    return queries, subjects


def _parity(opts_factory, queries, partition, slab_rows):
    fused = make_engine(opts_factory(fused=True, fused_slab_rows=slab_rows))
    staged = make_engine(opts_factory(fused=False))
    h_fused = fused.search_block(queries, partition)
    h_staged = staged.search_block(queries, partition)
    assert h_fused == h_staged
    return h_fused


@given(_family(DNA_ALPHABET), SLAB_ROWS)
@settings(max_examples=25, deadline=None)
def test_blastn_fused_matches_staged(family, slab_rows):
    queries, subjects = family
    _parity(BlastOptions.blastn, queries, _ArrayPartition(subjects, "dna"), slab_rows)


@given(_family(AA_ALPHABET), SLAB_ROWS)
@settings(max_examples=25, deadline=None)
def test_blastp_fused_matches_staged(family, slab_rows):
    queries, subjects = family
    _parity(
        BlastOptions.blastp, queries, _ArrayPartition(subjects, "protein"), slab_rows
    )


@given(_family(DNA_ALPHABET, min_len=90, max_len=150), SLAB_ROWS)
@settings(max_examples=15, deadline=None)
def test_blastx_fused_matches_staged(family, slab_rows):
    # DNA queries against the protein translations of the subjects: six
    # query frames per record flow through the inner blastp engine.
    from repro.bio.seq import translate

    queries, subjects = family
    db = [
        SeqRecord(f"p{i}", translate(rec.seq, stop=False))
        for i, rec in enumerate(subjects)
    ]
    db = [r for r in db if len(r.seq) >= 10]
    if not db:
        return
    _parity(BlastOptions.blastx, queries, _ArrayPartition(db, "protein"), slab_rows)


@given(_family(DNA_ALPHABET, min_len=90, max_len=150), SLAB_ROWS)
@settings(max_examples=15, deadline=None)
def test_tblastn_fused_matches_staged(family, slab_rows):
    # Protein queries against six-frame translated DNA subjects.
    from repro.bio.seq import translate

    nt_queries, subjects = family
    queries = [
        SeqRecord(f"pq{i}", translate(rec.seq, stop=False))
        for i, rec in enumerate(nt_queries)
    ]
    queries = [r for r in queries if len(r.seq) >= 10]
    if not queries:
        return
    partition = _ArrayPartition(subjects, "dna")
    fused = TblastnEngine(BlastOptions.blastp(fused=True, fused_slab_rows=slab_rows))
    staged = TblastnEngine(BlastOptions.blastp(fused=False))
    assert fused.search_block(queries, partition) == staged.search_block(
        queries, partition
    )


@given(_family(AA_ALPHABET, n_subjects=6), st.sampled_from([1, 5, 64]))
@settings(max_examples=10, deadline=None)
def test_fused_slab_bound_independence(family, slab_rows):
    """The slab bound is a memory knob, never a result knob: any bound
    produces the same HSPs as the open-everything schedule."""
    queries, subjects = family
    partition = _ArrayPartition(subjects, "protein")
    wide = make_engine(BlastOptions.blastp(fused=True, fused_slab_rows=1 << 30))
    tight = make_engine(BlastOptions.blastp(fused=True, fused_slab_rows=slab_rows))
    assert wide.search_block(queries, partition) == tight.search_block(
        queries, partition
    )
    # The tight bound may only lower (never raise) the per-round slab peak.
    assert tight.last_stats.peak_slab_bytes <= max(
        wide.last_stats.peak_slab_bytes, tight.last_stats.peak_slab_bytes
    )


def test_fused_stats_accounting():
    """Fused stage seconds cover disjoint regions (no double counting) and
    the round/slab counters behave: rounds > 0 with hits, staged runs
    report zero rounds, and counters shared with staged agree exactly."""
    rng = np.random.default_rng(11)
    anc = "".join(rng.choice(list(AA_ALPHABET), size=200))
    queries = [SeqRecord("q0", anc[10:190])]
    subjects = [SeqRecord(f"s{i}", anc) for i in range(5)]
    partition = _ArrayPartition(subjects, "protein")

    fused = make_engine(BlastOptions.blastp())
    staged = make_engine(BlastOptions.blastp(fused=False))
    assert fused.search_block(queries, partition) == staged.search_block(
        queries, partition
    )
    fs, ss = fused.last_stats, staged.last_stats

    assert fs.fused_rounds > 0 and fs.peak_slab_bytes > 0
    assert ss.fused_rounds == 0 and ss.peak_slab_bytes == 0
    # The work counters are scheduler-independent.
    assert (fs.n_subjects, fs.n_word_hits, fs.n_ungapped, fs.n_gapped, fs.n_reported) \
        == (ss.n_subjects, ss.n_word_hits, ss.n_ungapped, ss.n_gapped, ss.n_reported)
    # Stage timers cover disjoint code regions inside the busy interval.
    for s in (fs, ss):
        assert 0.0 < s.seed_seconds + s.ungapped_seconds + s.gapped_seconds <= s.busy_seconds

    # merge() propagates the new counters (sum rounds, max slab).
    acc = type(fs)()
    acc.merge(fs)
    acc.merge(ss)
    assert acc.fused_rounds == fs.fused_rounds
    assert acc.peak_slab_bytes == fs.peak_slab_bytes
