"""Property-based tests: MPI collectives and the DES kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MAX, MIN, SUM, run_spmd
from repro.simtime import Environment


@given(
    st.integers(1, 6),
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=6),
)
@settings(max_examples=25, deadline=None)
def test_allreduce_matches_numpy(nprocs, values):
    """allreduce over arbitrary per-rank values equals the numpy reduction."""
    per_rank = [values[r % len(values)] for r in range(nprocs)]

    def main(comm):
        mine = per_rank[comm.rank]
        return (
            comm.allreduce(mine, op=SUM),
            comm.allreduce(mine, op=MIN),
            comm.allreduce(mine, op=MAX),
        )

    results = run_spmd(nprocs, main)
    expected = (sum(per_rank), min(per_rank), max(per_rank))
    assert results == [expected] * nprocs


@given(st.integers(1, 6), st.integers(0, 5))
@settings(max_examples=20, deadline=None)
def test_bcast_from_any_root(nprocs, root_seed):
    root = root_seed % nprocs

    def main(comm):
        payload = {"from": comm.rank} if comm.rank == root else None
        return comm.bcast(payload, root=root)

    assert run_spmd(nprocs, main) == [{"from": root}] * nprocs


@given(st.integers(2, 6), st.data())
@settings(max_examples=20, deadline=None)
def test_alltoall_is_a_transpose(nprocs, data):
    matrix = [
        [data.draw(st.integers(0, 100)) for _ in range(nprocs)] for _ in range(nprocs)
    ]

    def main(comm):
        return comm.alltoall(matrix[comm.rank])

    results = run_spmd(nprocs, main)
    for dst in range(nprocs):
        assert results[dst] == [matrix[src][dst] for src in range(nprocs)]


@given(st.lists(st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
                min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_des_fires_events_in_time_order(delays):
    env = Environment()
    fired: list[tuple[float, int]] = []

    def proc(env, idx, delay):
        yield env.timeout(delay)
        fired.append((env.now, idx))

    for i, d in enumerate(delays):
        env.process(proc(env, i, d))
    env.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    assert env.now == max(delays)
    # Simultaneous events fire in schedule order.
    for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
        if t1 == t2:
            assert i1 < i2


@given(st.lists(st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
                min_size=1, max_size=12),
       st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_des_resource_serialises_work(durations, capacity):
    """With capacity c, makespan >= total/c and >= longest job."""
    from repro.simtime import Resource

    env = Environment()
    res = Resource(env, capacity=capacity)

    def job(env, d):
        yield res.request()
        yield env.timeout(d)
        res.release()

    for d in durations:
        env.process(job(env, d))
    env.run()
    assert env.now >= max(durations) - 1e-9
    assert env.now >= sum(durations) / capacity - 1e-9
    assert env.now <= sum(durations) + 1e-9
