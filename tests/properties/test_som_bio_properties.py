"""Property-based tests: SOM invariants and bio workload invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bio import SeqRecord, kmer_frequencies, shred_record
from repro.som.batch import accumulate_batch, batch_update
from repro.som.bmu import best_matching_units, pairwise_sq_distances
from repro.som.codebook import SOMGrid, init_codebook
from repro.som.neighborhood import gaussian_kernel

small_floats = st.floats(min_value=-10, max_value=10, allow_nan=False, width=64)


def data_matrices(min_rows=1, max_rows=30, dim=4):
    return arrays(np.float64, st.tuples(st.integers(min_rows, max_rows), st.just(dim)),
                  elements=small_floats)


@given(data_matrices(min_rows=2), st.integers(2, 5), st.integers(2, 5))
@settings(max_examples=50, deadline=None)
def test_batch_update_stays_in_data_hull(data, rows, cols):
    """Eq. 5 weights are convex combinations of inputs: new weights lie in
    the per-dimension bounding box of the data (touched units only)."""
    grid = SOMGrid(rows, cols)
    codebook = init_codebook(grid, data, method="random", seed_or_rng=1)
    kernel = gaussian_kernel(grid.grid_sq_distances(), 2.0)
    num, denom = accumulate_batch(data, codebook, kernel)
    new = batch_update(codebook, num, denom)
    lo, hi = data.min(axis=0), data.max(axis=0)
    touched = denom > 0
    assert (new[touched] >= lo - 1e-6).all()
    assert (new[touched] <= hi + 1e-6).all()


@given(data_matrices(min_rows=4), st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_accumulation_partition_invariance(data, n_parts):
    grid = SOMGrid(3, 3)
    codebook = init_codebook(grid, data, method="random", seed_or_rng=2)
    kernel = gaussian_kernel(grid.grid_sq_distances(), 1.5)
    whole_num, whole_den = accumulate_batch(data, codebook, kernel)
    part_num, part_den = None, None
    for chunk in np.array_split(data, n_parts):
        part_num, part_den = accumulate_batch(chunk, codebook, kernel, part_num, part_den)
    np.testing.assert_allclose(whole_num, part_num, atol=1e-9)
    np.testing.assert_allclose(whole_den, part_den, atol=1e-9)


@given(data_matrices(min_rows=3))
@settings(max_examples=50, deadline=None)
def test_bmu_is_the_true_argmin(data):
    codebook = data[: max(2, data.shape[0] // 2)].copy() + 0.25
    bmus = best_matching_units(data, codebook)
    d2 = pairwise_sq_distances(data, codebook)
    for i, b in enumerate(bmus):
        assert d2[i, b] <= d2[i].min() + 1e-9


@given(st.text(alphabet="ACGT", min_size=1, max_size=900),
       st.integers(50, 400), st.integers(0, 40))
@settings(max_examples=60, deadline=None)
def test_shred_reconstructs_and_respects_bounds(seq, fragment, overlap):
    overlap = min(overlap, fragment - 1)
    rec = SeqRecord("g", seq)
    frags = list(shred_record(rec, fragment=fragment, overlap=overlap))
    assert frags, "at least one fragment always emitted for non-empty input"
    # Every fragment is a verbatim slice at its declared coordinates.
    rebuilt_end = 0
    for f in frags:
        coords = f.id.rsplit("/", 1)[1]
        start, end = (int(x) for x in coords.split("-"))
        assert seq[start:end] == f.seq
        assert len(f.seq) <= fragment
        rebuilt_end = max(rebuilt_end, end)
    assert rebuilt_end == len(seq)  # full coverage to the final base
    step = fragment - overlap
    starts = [int(f.id.rsplit("/", 1)[1].split("-")[0]) for f in frags]
    assert all(b - a == step for a, b in zip(starts, starts[1:]))


@given(st.text(alphabet="ACGTN", min_size=0, max_size=300), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_kmer_counts_sum_to_window_count(seq, k):
    counts = kmer_frequencies(seq, k=k, normalize=False)
    expected = max(len(seq) - k + 1, 0)
    assert counts.sum() == expected
    assert counts.shape == (4**k,)
    assert (counts >= 0).all()
