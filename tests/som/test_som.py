"""SOM substrate: grid, kernels, BMU, batch/online training, U-matrix, quality."""

import numpy as np
import pytest

from repro.som import (
    BatchSOM,
    OnlineSOM,
    SOMGrid,
    accumulate_batch,
    batch_update,
    best_matching_units,
    bubble_kernel,
    component_planes,
    gaussian_kernel,
    init_codebook,
    pairwise_sq_distances,
    quantization_error,
    radius_schedule,
    topographic_error,
    umatrix,
)
from repro.som.umatrix import render_ascii, umatrix_full


class TestGrid:
    def test_geometry(self):
        g = SOMGrid(3, 4)
        assert g.n_units == 12
        assert g.diagonal == pytest.approx(np.hypot(2, 3))
        pos = g.positions()
        assert pos.shape == (12, 2)
        assert pos[5].tolist() == [1, 1]

    def test_grid_sq_distances_symmetric_zero_diag(self):
        g = SOMGrid(4, 4)
        d = g.grid_sq_distances()
        assert (np.diag(d) == 0).all()
        np.testing.assert_array_equal(d, d.T)
        assert d[0, 5] == 2  # (0,0) to (1,1)

    def test_neighbors(self):
        g = SOMGrid(3, 3)
        assert sorted(g.neighbors(4)) == [1, 3, 5, 7]  # center
        assert sorted(g.neighbors(0)) == [1, 3]  # corner
        with pytest.raises(IndexError):
            g.neighbors(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            SOMGrid(0, 5)


class TestInit:
    DATA = np.random.default_rng(1).random((50, 8))

    def test_random_init_within_bounding_box(self):
        cb = init_codebook(SOMGrid(5, 5), self.DATA, method="random", seed_or_rng=2)
        assert cb.shape == (25, 8)
        assert (cb >= self.DATA.min(axis=0) - 1e-12).all()
        assert (cb <= self.DATA.max(axis=0) + 1e-12).all()

    def test_linear_init_deterministic_and_planar(self):
        cb1 = init_codebook(SOMGrid(6, 6), self.DATA, method="linear")
        cb2 = init_codebook(SOMGrid(6, 6), self.DATA, method="linear")
        np.testing.assert_array_equal(cb1, cb2)
        # Planar: rank of centered codebook is 2.
        rank = np.linalg.matrix_rank(cb1 - cb1.mean(axis=0), tol=1e-8)
        assert rank == 2

    def test_degenerate_rank1_data(self):
        line = np.outer(np.linspace(0, 1, 30), np.ones(4))
        cb = init_codebook(SOMGrid(3, 3), line, method="linear")
        assert np.isfinite(cb).all()

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            init_codebook(SOMGrid(2, 2), self.DATA, method="pca3")

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            init_codebook(SOMGrid(2, 2), np.zeros((0, 3)))


class TestKernels:
    def test_gaussian_values(self):
        d2 = np.array([0.0, 1.0, 4.0])
        h = gaussian_kernel(d2, sigma=2.0)
        np.testing.assert_allclose(h, np.exp(-d2 / 4.0))
        assert h[0] == 1.0

    def test_bubble(self):
        d2 = np.array([0.0, 1.0, 4.0, 9.0])
        np.testing.assert_array_equal(bubble_kernel(d2, 2.0), [1, 1, 1, 0])

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            gaussian_kernel(np.zeros(1), 0.0)
        with pytest.raises(ValueError):
            bubble_kernel(np.zeros(1), -1.0)

    def test_radius_schedule(self):
        r = radius_schedule(10.0, 1.0, 10)
        assert r[0] == 10.0 and r[-1] == 1.0
        assert (np.diff(r) < 0).all()
        assert radius_schedule(5.0, 1.0, 1).tolist() == [5.0]
        with pytest.raises(ValueError):
            radius_schedule(1.0, 2.0, 5)
        with pytest.raises(ValueError):
            radius_schedule(2.0, 0.0, 5)


class TestBMU:
    def test_pairwise_matches_naive(self):
        rng = np.random.default_rng(3)
        data = rng.random((20, 6))
        cb = rng.random((15, 6))
        d2 = pairwise_sq_distances(data, cb)
        naive = ((data[:, None, :] - cb[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(d2, naive, atol=1e-9)

    def test_bmu_exact_match(self):
        cb = np.eye(5)
        data = cb[[3, 1, 4]]
        np.testing.assert_array_equal(best_matching_units(data, cb), [3, 1, 4])

    def test_chunking_invariant(self):
        rng = np.random.default_rng(4)
        data = rng.random((101, 7))
        cb = rng.random((23, 7))
        full = best_matching_units(data, cb, chunk=1024)
        small = best_matching_units(data, cb, chunk=7)
        np.testing.assert_array_equal(full, small)

    def test_deterministic_tie_break_lowest_index(self):
        cb = np.zeros((4, 3))
        data = np.ones((2, 3))
        np.testing.assert_array_equal(best_matching_units(data, cb), [0, 0])

    def test_random_tie_break_uses_all_candidates(self):
        cb = np.zeros((4, 3))
        data = np.ones((200, 3))
        bmus = best_matching_units(data, cb, rng=5)
        assert set(bmus.tolist()) == {0, 1, 2, 3}

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pairwise_sq_distances(np.zeros((3, 2)), np.zeros((4, 3)))
        with pytest.raises(ValueError):
            best_matching_units(np.zeros((3, 2)), np.zeros((4, 2)), chunk=0)


class TestBatchTraining:
    @staticmethod
    def _rgb(n=120, seed=0):
        return np.random.default_rng(seed).random((n, 3))

    def test_quantization_error_decreases(self):
        data = self._rgb()
        som = BatchSOM(SOMGrid(10, 10), dim=3)
        som.train(data, epochs=15, track_error=True)
        assert som.history[-1] < som.history[0] / 2

    def test_order_independence_exact(self):
        """Paper §II.D: "the batch algorithm is not influenced by the order
        in which the input vectors are presented"."""
        data = self._rgb()
        perm = np.random.default_rng(9).permutation(data.shape[0])
        cb1 = BatchSOM(SOMGrid(8, 8), dim=3).train(data, epochs=8)
        cb2 = BatchSOM(SOMGrid(8, 8), dim=3).train(data[perm], epochs=8)
        # Equal up to FP summation order (np.add.at accumulates per input).
        np.testing.assert_allclose(cb1, cb2, atol=1e-8)

    def test_accumulate_decomposes_over_blocks(self):
        """Eq. 5 sums decompose over any partition — the MapReduce property."""
        data = self._rgb(97)
        grid = SOMGrid(6, 6)
        cb = init_codebook(grid, data)
        kernel = gaussian_kernel(grid.grid_sq_distances(), 2.5)
        num_all, den_all = accumulate_batch(data, cb, kernel)
        num_sum, den_sum = None, None
        for block in np.array_split(data, 7):
            num_sum, den_sum = accumulate_batch(block, cb, kernel, num_sum, den_sum)
        np.testing.assert_allclose(num_all, num_sum, atol=1e-10)
        np.testing.assert_allclose(den_all, den_sum, atol=1e-10)

    def test_batch_update_keeps_untouched_units(self):
        cb = np.full((4, 2), 7.0)
        num = np.zeros((4, 2))
        denom = np.zeros(4)
        num[1] = [2.0, 4.0]
        denom[1] = 2.0
        new = batch_update(cb, num, denom)
        np.testing.assert_array_equal(new[1], [1.0, 2.0])
        np.testing.assert_array_equal(new[0], [7.0, 7.0])

    def test_topology_preserved_on_rgb(self):
        data = self._rgb(200, seed=3)
        grid = SOMGrid(10, 10)
        cb = BatchSOM(grid, dim=3).train(data, epochs=20)
        assert topographic_error(data, cb, grid) < 0.2
        # Neighbouring units must be closer than random unit pairs.
        u = umatrix(grid, cb)
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, 100, size=(200, 2))
        rand_d = np.linalg.norm(cb[pairs[:, 0]] - cb[pairs[:, 1]], axis=1).mean()
        assert u.mean() < rand_d / 2

    def test_empty_block_accumulation_is_noop(self):
        grid = SOMGrid(3, 3)
        cb = np.random.default_rng(1).random((9, 4))
        kernel = gaussian_kernel(grid.grid_sq_distances(), 1.0)
        num, den = accumulate_batch(np.zeros((0, 4)), cb, kernel)
        assert num.sum() == 0 and den.sum() == 0

    def test_shape_validation(self):
        som = BatchSOM(SOMGrid(3, 3), dim=5)
        with pytest.raises(ValueError):
            som.train(np.zeros((10, 4)))

    def test_kernel_shape_checked(self):
        with pytest.raises(ValueError):
            accumulate_batch(np.zeros((2, 3)), np.zeros((4, 3)), np.zeros((3, 3)))


class TestOnlineTraining:
    def test_learns_rgb_clusters(self):
        data = np.random.default_rng(5).random((150, 3))
        som = OnlineSOM(SOMGrid(8, 8), dim=3)
        cb = som.train(data, epochs=6)
        assert quantization_error(data, cb) < 0.2

    def test_order_dependence(self):
        """The online rule — unlike batch — depends on presentation order."""
        data = np.random.default_rng(6).random((80, 3))
        perm = np.random.default_rng(7).permutation(80)
        cb1 = OnlineSOM(SOMGrid(6, 6), dim=3).train(data, epochs=3)
        cb2 = OnlineSOM(SOMGrid(6, 6), dim=3).train(data[perm], epochs=3)
        assert not np.allclose(cb1, cb2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OnlineSOM(SOMGrid(2, 2), dim=2, alpha0=0.0)
        with pytest.raises(ValueError):
            OnlineSOM(SOMGrid(2, 2), dim=2, alpha_final=0.9, alpha0=0.5)


class TestUmatrixAndQuality:
    def test_two_cluster_data_shows_ridge(self):
        rng = np.random.default_rng(8)
        a = rng.normal(0.0, 0.02, size=(100, 4))
        b = rng.normal(1.0, 0.02, size=(100, 4))
        data = np.vstack([a, b])
        grid = SOMGrid(10, 10)
        cb = BatchSOM(grid, dim=4).train(data, epochs=20)
        u = umatrix(grid, cb)
        # Ridge: max boundary distance far above median within-cluster value.
        assert u.max() > 4 * np.median(u)

    def test_umatrix_full_shape_and_consistency(self):
        grid = SOMGrid(5, 7)
        cb = np.random.default_rng(9).random((35, 3))
        full = umatrix_full(grid, cb)
        assert full.shape == (9, 13)
        np.testing.assert_allclose(full[0::2, 0::2], umatrix(grid, cb))

    def test_component_planes(self):
        grid = SOMGrid(4, 6)
        cb = np.random.default_rng(10).random((24, 5))
        planes = component_planes(grid, cb)
        assert planes.shape == (5, 4, 6)
        np.testing.assert_array_equal(planes[2, 1, 3], cb[1 * 6 + 3, 2])

    def test_render_ascii(self):
        art = render_ascii(np.arange(12).reshape(3, 4))
        lines = art.splitlines()
        assert len(lines) == 3
        assert len(lines[0]) == 4
        assert lines[0][0] == " " and lines[-1][-1] == "@"

    def test_quality_validation(self):
        with pytest.raises(ValueError):
            quantization_error(np.zeros((0, 3)), np.zeros((4, 3)))
        with pytest.raises(ValueError):
            topographic_error(np.zeros((5, 3)), np.zeros((4, 3)), SOMGrid(3, 3))

    def test_codebook_grid_mismatch(self):
        with pytest.raises(ValueError):
            umatrix(SOMGrid(3, 3), np.zeros((5, 2)))
