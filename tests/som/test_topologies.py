"""Hexagonal and toroidal SOM grid topologies."""

import numpy as np
import pytest

from repro.som import BatchSOM, SOMGrid, quantization_error, topographic_error, umatrix
from repro.som.umatrix import umatrix_full


class TestHexGrid:
    def test_interior_unit_has_six_equidistant_neighbors(self):
        g = SOMGrid(6, 6, topology="hex")
        center = 3 * 6 + 3
        neigh = g.neighbors(center)
        assert len(neigh) == 6
        pos = g.positions()
        dists = np.linalg.norm(pos[neigh] - pos[center], axis=1)
        np.testing.assert_allclose(dists, 1.0, atol=1e-9)

    def test_corner_units_have_fewer_neighbors(self):
        g = SOMGrid(5, 5, topology="hex")
        assert 2 <= len(g.neighbors(0)) <= 3

    def test_row_spacing_compressed(self):
        g = SOMGrid(4, 4, topology="hex")
        pos = g.positions()
        assert pos[4, 0] == pytest.approx(np.sqrt(3) / 2)
        assert pos[4 + 1, 1] == pytest.approx(1.5)  # odd row shifted by 0.5

    def test_neighbor_relation_symmetric(self):
        g = SOMGrid(5, 7, topology="hex")
        for k in range(g.n_units):
            for n in g.neighbors(k):
                assert k in g.neighbors(n)

    def test_training_on_hex_grid_works(self):
        data = np.random.default_rng(2).random((150, 3))
        grid = SOMGrid(8, 8, topology="hex")
        cb = BatchSOM(grid, dim=3).train(data, epochs=12)
        assert quantization_error(data, cb) < 0.15
        assert topographic_error(data, cb, grid) < 0.25
        u = umatrix(grid, cb)
        assert u.shape == (8, 8)
        assert np.isfinite(u).all() and (u > 0).all()

    def test_umatrix_full_rejected_on_hex(self):
        g = SOMGrid(3, 3, topology="hex")
        with pytest.raises(ValueError):
            umatrix_full(g, np.zeros((9, 2)))


class TestToroidalGrid:
    def test_every_unit_has_four_neighbors(self):
        g = SOMGrid(4, 5, periodic=True)
        for k in range(g.n_units):
            assert len(g.neighbors(k)) == 4

    def test_wraparound_adjacency(self):
        g = SOMGrid(4, 5, periodic=True)
        # Unit (0, 0) is adjacent to (3, 0) and (0, 4) across the seams.
        assert 3 * 5 + 0 in g.neighbors(0)
        assert 0 * 5 + 4 in g.neighbors(0)

    def test_distances_wrap(self):
        g = SOMGrid(8, 8, periodic=True)
        d2 = g.grid_sq_distances()
        # Opposite corners are 2 steps apart on the torus, not ~9.9.
        assert d2[0, 7 * 8 + 7] == pytest.approx(2.0)
        np.testing.assert_array_equal(d2, d2.T)
        assert d2.max() <= 2 * (4**2)

    def test_diagonal_reflects_torus(self):
        g = SOMGrid(10, 10, periodic=True)
        assert g.diagonal == pytest.approx(np.hypot(5, 5))

    def test_training_and_umatrix(self):
        data = np.random.default_rng(3).random((120, 3))
        grid = SOMGrid(7, 7, periodic=True)
        cb = BatchSOM(grid, dim=3).train(data, epochs=10)
        assert quantization_error(data, cb) < 0.2
        u = umatrix(grid, cb)
        assert u.shape == (7, 7) and (u > 0).all()

    def test_hex_periodic_combination_rejected(self):
        with pytest.raises(ValueError):
            SOMGrid(4, 4, topology="hex", periodic=True)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            SOMGrid(4, 4, topology="triangular")


class TestBackwardCompatibility:
    def test_default_grid_unchanged(self):
        g = SOMGrid(3, 4)
        assert g.topology == "rect" and not g.periodic
        assert g.diagonal == pytest.approx(np.hypot(2, 3))
        assert sorted(g.neighbors(5)) == [1, 4, 6, 9]
