"""Semi-supervised classification and image export."""

import numpy as np
import pytest

from repro.som import (
    BatchSOM,
    SOMGrid,
    classify,
    codebook_to_rgb,
    label_units,
    propagate_labels,
    write_pgm,
    write_ppm,
)


@pytest.fixture(scope="module")
def trained_two_cluster():
    rng = np.random.default_rng(5)
    a = rng.normal(0.2, 0.03, size=(80, 4))
    b = rng.normal(0.8, 0.03, size=(80, 4))
    data = np.vstack([a, b])
    labels = ["A"] * 80 + ["B"] * 80
    grid = SOMGrid(8, 8)
    codebook = BatchSOM(grid, dim=4).train(data, epochs=15)
    return data, labels, grid, codebook


class TestLabelUnits:
    def test_majority_labels_and_empty_units(self, trained_two_cluster):
        data, labels, grid, codebook = trained_two_cluster
        unit_labels = label_units(data, labels, codebook, grid)
        assert len(unit_labels) == grid.n_units
        present = {lab for lab in unit_labels if lab is not None}
        assert present == {"A", "B"}
        assert None in unit_labels  # transition units get no vectors

    def test_length_mismatch(self, trained_two_cluster):
        data, labels, grid, codebook = trained_two_cluster
        with pytest.raises(ValueError):
            label_units(data, labels[:-1], codebook, grid)


class TestPropagate:
    def test_fills_all_units_from_neighbours(self, trained_two_cluster):
        data, labels, grid, codebook = trained_two_cluster
        unit_labels = label_units(data, labels, codebook, grid)
        full = propagate_labels(unit_labels, grid)
        assert None not in full
        # Propagation never flips an existing label.
        for orig, new in zip(unit_labels, full):
            if orig is not None:
                assert new == orig

    def test_spatial_propagation(self):
        grid = SOMGrid(1, 5)
        filled = propagate_labels(["L", None, None, None, "R"], grid)
        assert filled == ["L", "L", "L", "R", "R"]  # tie at centre -> lowest index

    def test_no_labels_raises(self):
        with pytest.raises(ValueError, match="no labelled units"):
            propagate_labels([None, None], SOMGrid(1, 2))

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            propagate_labels(["A"], SOMGrid(2, 2))


class TestClassify:
    def test_holdout_accuracy(self, trained_two_cluster):
        data, labels, grid, codebook = trained_two_cluster
        unit_labels = label_units(data, labels, codebook, grid)
        rng = np.random.default_rng(9)
        test_a = rng.normal(0.2, 0.03, size=(30, 4))
        test_b = rng.normal(0.8, 0.03, size=(30, 4))
        predictions = classify(np.vstack([test_a, test_b]), codebook, unit_labels, grid)
        truth = ["A"] * 30 + ["B"] * 30
        accuracy = np.mean([p == t for p, t in zip(predictions, truth)])
        assert accuracy > 0.95

    def test_without_propagation_can_abstain(self, trained_two_cluster):
        data, labels, grid, codebook = trained_two_cluster
        unit_labels = label_units(data, labels, codebook, grid)
        mid = np.full((5, 4), 0.5)  # between the clusters
        preds = classify(mid, codebook, unit_labels, grid, propagate=False)
        assert len(preds) == 5  # may include None; must not crash

    def test_empty_input(self, trained_two_cluster):
        data, labels, grid, codebook = trained_two_cluster
        unit_labels = label_units(data, labels, codebook, grid)
        assert classify(np.zeros((0, 4)), codebook, unit_labels, grid) == []


class TestExport:
    def test_pgm_roundtrip_header_and_size(self, tmp_path):
        m = np.arange(12, dtype=float).reshape(3, 4)
        path = write_pgm(m, tmp_path / "u.pgm")
        blob = open(path, "rb").read()
        assert blob.startswith(b"P5\n4 3\n255\n")
        pixels = blob.split(b"255\n", 1)[1]
        assert len(pixels) == 12
        assert pixels[0] == 0 and pixels[-1] == 255

    def test_pgm_invert(self, tmp_path):
        m = np.array([[0.0, 1.0]])
        normal = open(write_pgm(m, tmp_path / "a.pgm"), "rb").read()[-2:]
        inverted = open(write_pgm(m, tmp_path / "b.pgm", invert=True), "rb").read()[-2:]
        assert normal == bytes([0, 255])
        assert inverted == bytes([255, 0])

    def test_pgm_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(np.zeros(5), tmp_path / "x.pgm")

    def test_ppm_from_codebook(self, tmp_path):
        grid = SOMGrid(4, 5)
        codebook = np.random.default_rng(0).random((20, 3))
        img = codebook_to_rgb(grid, codebook, scale=2)
        assert img.shape == (8, 10, 3)
        path = write_ppm(img, tmp_path / "map.ppm")
        blob = open(path, "rb").read()
        assert blob.startswith(b"P6\n10 8\n255\n")
        assert len(blob.split(b"255\n", 1)[1]) == 8 * 10 * 3

    def test_ppm_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(np.zeros((3, 3)), tmp_path / "bad.ppm")
        with pytest.raises(ValueError):
            codebook_to_rgb(SOMGrid(2, 2), np.zeros((4, 5)))
        with pytest.raises(ValueError):
            codebook_to_rgb(SOMGrid(2, 2), np.zeros((4, 3)), scale=0)
