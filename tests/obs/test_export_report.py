"""Unit tests for the Chrome exporter, its validator, and the reports."""

import json

import pytest

from repro.obs.export import (
    assert_valid_chrome_trace,
    chrome_trace,
    text_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.report import (
    critical_path_report,
    phase_durations,
    shuffle_traffic,
    stage_breakdown,
    utilization_report,
)
from repro.obs.trace import TickClock, TraceSession


def make_session():
    """Two ranks doing a tiny synthetic mrblast-shaped run on a TickClock."""
    session = TraceSession(2, clock=TickClock())
    for rank, busy in ((0, 3.0), (1, 5.0)):
        trc = session.tracer(rank)
        trc.begin("rank", cat="lifecycle", nprocs=2)
        sid = trc.begin("mr.map", cat="mr")
        trc.begin("mrblast.unit", cat="driver", block=0, partition=rank)
        trc.end(busy_s=busy, seed_s=busy / 2, ungapped_s=busy / 4,
                gapped_s=busy / 8, hits=rank + 1)
        trc.end(sid, seconds=busy + 1.0)
        trc.instant("mr.traffic", cat="mr", phase="aggregate",
                    pairs=10 * (rank + 1), bytes=100 * (rank + 1))
        trc.unwind()
    return session


class TestChromeExport:
    def test_exports_valid_document(self):
        doc = chrome_trace(make_session())
        assert validate_chrome_trace(doc) == []
        assert doc["traceEvents"]

    def test_thread_metadata_per_rank(self):
        doc = chrome_trace(make_session())
        meta = [e for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"rank 0", "rank 1", "supervisor"}

    def test_timestamps_are_microseconds(self):
        session = TraceSession(1, clock=TickClock())
        trc = session.tracer(0)
        trc.instant("x")  # TickClock -> ts 0.0 seconds
        trc.instant("y")  # ts 1.0 seconds
        doc = chrome_trace(session)
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "i"]
        assert ts == [0.0, 1e6]

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, make_session())
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_instants_are_thread_scoped(self):
        doc = chrome_trace(make_session())
        for ev in doc["traceEvents"]:
            if ev["ph"] == "i":
                assert ev["s"] == "t"


class TestValidator:
    def test_flags_non_object(self):
        assert validate_chrome_trace([]) == ["document is not an object"]
        assert validate_chrome_trace({"x": 1}) == [
            "traceEvents is missing or not a list"]

    def test_flags_bad_phase_and_missing_fields(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0},
            {"ph": "i", "pid": 0, "tid": 0, "ts": 0, "s": "t"},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("bad phase" in p for p in problems)
        assert any("missing name" in p for p in problems)

    def test_flags_backwards_timestamps(self):
        doc = {"traceEvents": [
            {"ph": "i", "name": "a", "pid": 0, "tid": 0, "ts": 5, "s": "t"},
            {"ph": "i", "name": "b", "pid": 0, "tid": 0, "ts": 2, "s": "t"},
        ]}
        assert any("previous ts" in p for p in validate_chrome_trace(doc))

    def test_flags_unbalanced_spans(self):
        doc = {"traceEvents": [
            {"ph": "E", "name": "a", "pid": 0, "tid": 0, "ts": 0},
            {"ph": "B", "name": "b", "pid": 0, "tid": 0, "ts": 1},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("E with no open B" in p for p in problems)
        assert any("unclosed B" in p for p in problems)

    def test_flags_non_scalar_args(self):
        doc = {"traceEvents": [
            {"ph": "i", "name": "a", "pid": 0, "tid": 0, "ts": 0, "s": "t",
             "args": {"bad": [1, 2]}},
        ]}
        assert any("not a JSON scalar" in p for p in validate_chrome_trace(doc))

    def test_assert_raises_with_problem_list(self):
        with pytest.raises(ValueError, match="invalid Chrome trace"):
            assert_valid_chrome_trace({})


class TestTextSummary:
    def test_lists_spans_and_instants_per_rank(self):
        text = text_summary(make_session())
        assert "rank 0:" in text and "rank 1:" in text
        assert "span mr.map" in text
        assert "inst mr.traffic" in text

    def test_idle_supervisor_is_omitted(self):
        text = text_summary(make_session())
        assert "supervisor" not in text


class TestReports:
    def test_phase_durations_from_seconds_attrs(self):
        durations = phase_durations(make_session())
        assert durations[0] == {"map": 4.0}
        assert durations[1] == {"map": 6.0}

    def test_shuffle_traffic_sums_exactly(self):
        traffic = shuffle_traffic(make_session())
        assert traffic["per_rank"][0]["aggregate"] == {"pairs": 10, "bytes": 100}
        assert traffic["per_rank"][1]["aggregate"] == {"pairs": 20, "bytes": 200}
        assert traffic["totals"]["aggregate"] == {"pairs": 30, "bytes": 300}

    def test_stage_breakdown_sums_unit_attrs(self):
        stages = stage_breakdown(make_session())
        assert stages[1]["busy_s"] == 5.0
        assert stages[1]["seed_s"] == 2.5
        assert stages[1]["units"] == 1 and stages[1]["hits"] == 2

    def test_utilization_report_shape(self):
        rep = utilization_report(make_session())
        assert set(rep["per_rank"]) >= {0, 1}
        assert rep["makespan_s"] > 0
        assert rep["straggler_rank"] in (0, 1)
        assert rep["stage_totals"]["busy_s"] == 8.0
        assert rep["phase_totals_s"]["map"] == 10.0
        for r in (0, 1):
            assert 0.0 <= rep["per_rank"][r]["utilization"] <= 1.0

    def test_critical_path_report_names_straggler(self):
        rep = utilization_report(make_session())
        text = critical_path_report(make_session())
        assert f"straggler: rank {rep['straggler_rank']}" in text
        assert "phase breakdown (critical path)" in text
        assert "makespan" in text
