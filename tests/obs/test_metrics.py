"""Unit tests for counters, gauges, histograms and the registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("pairs")
        c.inc()
        c.inc(4)
        c.add(0.5)
        assert c.snapshot() == 5.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("x").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(7)
        g.set(2.5)
        assert g.snapshot() == 2.5

    def test_histogram_buckets_inclusive_upper_edges(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 99.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == [2, 2, 1]  # last is overflow
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(115.5)
        assert snap["min"] == 0.5 and snap["max"] == 99.0

    def test_empty_histogram_snapshot(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zeta").inc(1)
        reg.counter("alpha").inc(2)
        assert list(reg.snapshot()) == ["alpha", "zeta"]


class TestMergeSnapshots:
    def test_scalars_sum_across_ranks(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("pairs").inc(10)
        b.counter("pairs").inc(5)
        b.counter("only_b").inc(1)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["pairs"] == 15
        assert merged["only_b"] == 1

    def test_histograms_merge_bucketwise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("lat", bounds=(1.0,)).observe(0.5)
        b.histogram("lat", bounds=(1.0,)).observe(2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["lat"]["count"] == 2
        assert merged["lat"]["buckets"] == [1, 1]
        assert merged["lat"]["min"] == 0.5 and merged["lat"]["max"] == 2.0

    def test_mismatched_bounds_raise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("lat", bounds=(1.0,)).observe(0.5)
        b.histogram("lat", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="mismatched bounds"):
            merge_snapshots([a.snapshot(), b.snapshot()])
