"""Unit tests for the per-rank Tracer, clocks and TraceSession."""

import json
import threading

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SimClock,
    TickClock,
    Tracer,
    TraceSession,
    current_tracer,
    set_current_tracer,
)


def events_of(trc):
    return list(trc.iter_events())


class TestTracerRecording:
    def test_begin_end_produces_balanced_pair(self):
        trc = Tracer(0, clock=TickClock())
        sid = trc.begin("work", cat="test", n=3)
        trc.end(sid, seconds=1.5)
        (b, e) = events_of(trc)
        assert b[0] == "B" and e[0] == "E"
        assert b[2] == e[2] == sid
        assert b[3] == e[3] == "work"
        assert b[5] == {"n": 3} and e[5] == {"seconds": 1.5}

    def test_spans_nest_lifo(self):
        trc = Tracer(0, clock=TickClock())
        outer = trc.begin("outer")
        trc.begin("inner")
        assert trc.open_spans == ["outer", "inner"]
        trc.end()
        trc.end(outer)
        assert trc.open_spans == []

    def test_end_without_open_span_raises(self):
        trc = Tracer(0, clock=TickClock())
        with pytest.raises(RuntimeError, match="no open span"):
            trc.end()

    def test_end_with_wrong_sid_raises(self):
        trc = Tracer(0, clock=TickClock())
        trc.begin("a")
        with pytest.raises(RuntimeError, match="does not match"):
            trc.end(sid=12345)

    def test_span_context_manager(self):
        trc = Tracer(0, clock=TickClock())
        with trc.span("phase", cat="mr", k=1):
            trc.instant("tick")
        phases = [e[0] for e in events_of(trc)]
        assert phases == ["B", "i", "E"]

    def test_unwind_closes_all_open_spans(self):
        trc = Tracer(0, clock=TickClock())
        trc.begin("a")
        trc.begin("b")
        trc.begin("c")
        trc.unwind(aborted=True)
        assert trc.open_spans == []
        ends = [e for e in events_of(trc) if e[0] == "E"]
        assert len(ends) == 3
        assert all(e[5] == {"aborted": True} for e in ends)

    def test_timestamps_monotonic_even_with_backwards_clock(self):
        ticks = iter([5.0, 3.0, 9.0, 1.0])
        trc = Tracer(0, clock=lambda: next(ticks))
        for _ in range(4):
            trc.instant("x")
        ts = [e[1] for e in events_of(trc)]
        assert ts == sorted(ts)
        assert ts == [5.0, 5.0, 9.0, 9.0]

    def test_span_ids_unique_across_ranks(self):
        session = TraceSession(4, clock=TickClock())
        sids = set()
        for rank in range(4):
            trc = session.tracer(rank)
            for _ in range(50):
                sid = trc.begin("s")
                assert sid not in sids
                sids.add(sid)
                trc.end(sid)


class TestTracerBounds:
    def test_overflow_without_spill_drops_and_counts(self):
        trc = Tracer(0, clock=TickClock(), max_events=4)
        for _ in range(10):
            trc.instant("x")
        assert len(trc.events) == 4
        assert trc.dropped_events == 6

    def test_overflow_spills_to_jsonl_and_iterates_in_order(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        trc = Tracer(2, clock=TickClock(), max_events=3, spill_path=spill)
        for i in range(10):
            trc.instant("x", i=i)
        assert trc.dropped_events == 0
        assert trc.spilled_events > 0
        got = [e[5]["i"] for e in events_of(trc)]
        assert got == list(range(10))
        # The spill file is real JSONL.
        with open(spill) as fh:
            for line in fh:
                json.loads(line)

    def test_spilled_events_keep_monotonic_timestamps(self, tmp_path):
        trc = Tracer(0, clock=TickClock(), max_events=2,
                     spill_path=tmp_path / "s.jsonl")
        for _ in range(7):
            trc.instant("x")
        ts = [e[1] for e in events_of(trc)]
        assert ts == sorted(ts)


class TestClocks:
    def test_tick_clock_deterministic(self):
        assert [TickClock()() for _ in range(1)] == [0.0]
        c = TickClock(start=10, step=2)
        assert [c(), c(), c()] == [10.0, 12.0, 14.0]

    def test_sim_clock_reads_now_attribute(self):
        class Env:
            now = 0.0

        env = Env()
        clock = SimClock(env)
        assert clock() == 0.0
        env.now = 4.25
        assert clock() == 4.25


class TestNullTracer:
    def test_disabled_and_inert(self):
        trc = NullTracer()
        assert trc.enabled is False
        sid = trc.begin("x")
        trc.end(sid)
        trc.instant("y")
        trc.unwind()
        with trc.span("z"):
            pass
        assert list(trc.iter_events()) == []
        assert trc.open_spans == []

    def test_current_tracer_defaults_to_null(self):
        set_current_tracer(None)
        assert current_tracer() is NULL_TRACER

    def test_current_tracer_is_thread_local(self):
        mine = Tracer(0, clock=TickClock())
        set_current_tracer(mine)
        seen = {}

        def other():
            seen["tracer"] = current_tracer()

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert current_tracer() is mine
        assert seen["tracer"] is NULL_TRACER
        set_current_tracer(None)


class TestTraceSession:
    def test_has_one_tracer_per_rank_plus_supervisor(self):
        session = TraceSession(3)
        assert len(session.tracers) == 4
        assert session.tracer(1).rank == 1
        assert session.supervisor is session.tracers[3]

    def test_spill_dir_gives_per_rank_paths(self, tmp_path):
        session = TraceSession(2, spill_dir=str(tmp_path))
        paths = {t.spill_path for t in session.tracers}
        assert len(paths) == 3  # distinct per rank
        assert all(str(tmp_path) in p for p in paths)
