"""Unit tests for the straggler-mitigation primitives (``repro.sched``)
and their use in the simulated fleet (``repro.cluster.dispatch``)."""

import numpy as np
import pytest

from repro.cluster.blast_model import BlastWorkloadModel
from repro.cluster.dispatch import simulate_blast_run
from repro.cluster.machine import ranger
from repro.mpi.faultplan import FaultPlan
from repro.sched import P2Quantile, SpeculationPolicy, StragglerTracker


class TestP2Quantile:
    def test_empty_returns_none(self):
        assert P2Quantile().value() is None

    def test_small_samples_are_exact(self):
        q = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            q.add(x)
        assert q.value() == 2.0
        q.add(4.0)
        assert q.value() == 2.5  # interpolated median of {1,2,3,4}

    def test_single_observation(self):
        q = P2Quantile(0.9)
        q.add(7.0)
        assert q.value() == 7.0

    @pytest.mark.parametrize("quantile", [0.25, 0.5, 0.9])
    def test_tracks_numpy_percentile_on_large_stream(self, quantile):
        rng = np.random.default_rng(42)
        data = rng.lognormal(0.0, 0.6, size=5000)
        est = P2Quantile(quantile)
        for x in data:
            est.add(float(x))
        exact = float(np.quantile(data, quantile))
        assert est.count == len(data)
        # P² is an approximation; a few percent on a lognormal is typical.
        assert abs(est.value() - exact) / exact < 0.05

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestSpeculationPolicy:
    def test_defaults_valid(self):
        p = SpeculationPolicy()
        assert p.factor == 2.0 and p.max_copies == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"factor": 1.0},
            {"factor": 0.5},
            {"quantile": 0.0},
            {"warmup": 0},
            {"min_elapsed": -1.0},
            {"max_copies": 1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            SpeculationPolicy(**kwargs)


class TestStragglerTracker:
    def _warmed(self, policy=None):
        """A tracker with 4 one-second completions behind it."""
        t = StragglerTracker(policy or SpeculationPolicy(factor=2.0, warmup=3))
        for unit in range(4):
            t.assign(unit, worker=unit % 2, now=float(unit))
            t.complete(unit, worker=unit % 2, now=float(unit) + 1.0)
        return t

    def test_first_completion_wins(self):
        t = self._warmed()
        t.assign(10, worker=1, now=100.0)
        t.assign(10, worker=2, now=101.0)  # speculative copy
        assert t.speculated == 1
        assert t.complete(10, worker=2, now=101.5) is True
        assert t.complete(10, worker=1, now=109.0) is False
        assert t.wasted == 1
        assert t.completed == 5

    def test_candidate_requires_warmup_and_overdue(self):
        t = StragglerTracker(SpeculationPolicy(factor=2.0, warmup=3))
        t.assign(0, worker=1, now=0.0)
        assert t.candidate(now=1000.0) is None  # no completions yet
        t = self._warmed()  # median 1.0 -> deadline 2.0
        t.assign(10, worker=1, now=100.0)
        assert t.candidate(now=101.0) is None  # not overdue
        assert t.candidate(now=103.0) == 10
        assert t.candidate(now=103.0, exclude_worker=1) is None

    def test_candidate_honours_max_copies(self):
        t = self._warmed()
        t.assign(10, worker=1, now=100.0)
        t.assign(10, worker=2, now=100.0)
        assert t.candidate(now=200.0, exclude_worker=9) is None

    def test_candidate_picks_most_overdue(self):
        t = self._warmed()
        t.assign(10, worker=1, now=100.0)
        t.assign(11, worker=2, now=90.0)
        assert t.candidate(now=110.0, exclude_worker=9) == 11

    def test_release_worker_orphans_only_runnerless_units(self):
        t = self._warmed()
        t.assign(10, worker=1, now=100.0)
        t.assign(11, worker=1, now=100.0)
        t.assign(11, worker=2, now=101.0)  # speculation survivor
        orphans = t.release_worker(1, now=102.0)
        assert orphans == [10]
        assert t.runners(11) == (2,)

    def test_forget_reopens_a_done_unit(self):
        t = self._warmed()
        assert t.is_done(0)
        assert t.accepted_units(0) == [0, 2]
        t.forget(0)
        assert not t.is_done(0)
        assert t.completed == 3

    def test_report_snapshot(self):
        t = self._warmed()
        rep = t.report(lost_ranks=(3,), degraded=True)
        assert rep.completed == 4
        assert rep.lost_ranks == (3,)
        assert rep.degraded
        assert rep.median_unit_seconds == 1.0


def _workload(n_blocks=8, n_partitions=6, seed=0):
    return BlastWorkloadModel(
        name="sched-test",
        n_blocks=n_blocks,
        queries_per_block=500,
        n_partitions=n_partitions,
        partition_gb=0.05,
        base_unit_seconds=10.0,
        sigma=0.4,
        straggler_prob=0.0,
        seed=seed,
    )


class TestSimulatedFleet:
    def test_static_policy_rejects_speculation_and_reassignment(self):
        wl = _workload()
        with pytest.raises(ValueError, match="static"):
            simulate_blast_run(ranger(16), wl, scheduler="static",
                               speculation=SpeculationPolicy())
        with pytest.raises(ValueError, match="static"):
            simulate_blast_run(ranger(16), wl, scheduler="static", reassign=True)

    def test_tracked_clean_run_matches_untracked(self):
        wl = _workload()
        plain = simulate_blast_run(ranger(16), wl)
        tracked = simulate_blast_run(ranger(16), wl, reassign=True)
        assert tracked.map_makespan == plain.map_makespan
        assert tracked.speculated_units == 0
        assert tracked.lost_workers == ()

    def test_speculation_beats_a_stalled_worker(self):
        wl = _workload(n_blocks=16, n_partitions=8)
        plan = FaultPlan.parse("stall=3@2:400", 63)
        slow = simulate_blast_run(ranger(64), wl, fault_plan=plan)
        fast = simulate_blast_run(
            ranger(64), wl, fault_plan=plan,
            speculation=SpeculationPolicy(factor=2.0),
        )
        assert fast.map_makespan * 1.5 <= slow.map_makespan
        assert fast.speculated_units >= 1
        assert fast.wasted_units >= 1
        assert fast.wasted_seconds > 0

    def test_crash_with_reassignment_completes_every_unit(self):
        wl = _workload()
        plan = FaultPlan.parse("crash=2@3", 15)
        res = simulate_blast_run(ranger(16), wl, fault_plan=plan, reassign=True)
        assert sum(t.units for t in res.traces) == wl.n_units
        assert res.reassigned_units >= 1
        assert res.lost_workers == (2,)
        assert res.lost_units == 0
        assert res.traces[2].crashed

    def test_crash_without_reassignment_loses_the_held_unit(self):
        wl = _workload()
        plan = FaultPlan.parse("crash=2@3", 15)
        res = simulate_blast_run(ranger(16), wl, fault_plan=plan)
        assert res.lost_units == 1
        assert sum(t.units for t in res.traces) == wl.n_units - 1

    def test_affinity_scheduler_supports_reassignment(self):
        wl = _workload()
        plan = FaultPlan.parse("crash=1@2", 15)
        res = simulate_blast_run(
            ranger(16), wl, scheduler="affinity", fault_plan=plan, reassign=True
        )
        assert sum(t.units for t in res.traces) == wl.n_units
        assert res.lost_units == 0

    def test_deterministic_replay(self):
        wl = _workload(n_blocks=10)
        plan = FaultPlan.parse("stall=1@2:50,crash=4@6", 15)
        kwargs = dict(fault_plan=plan, reassign=True,
                      speculation=SpeculationPolicy(factor=2.0))
        a = simulate_blast_run(ranger(16), wl, **kwargs)
        b = simulate_blast_run(ranger(16), wl, **kwargs)
        assert a.map_makespan == b.map_makespan
        assert a.speculated_units == b.speculated_units
        assert a.wasted_seconds == b.wasted_seconds
        assert [t.units for t in a.traces] == [t.units for t in b.traces]
