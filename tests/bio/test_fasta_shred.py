"""FASTA I/O, splitting, indexing, shredding, synthetic workloads, k-mers."""

import io

import numpy as np
import pytest

from repro.bio import (
    FastaIndex,
    SeqRecord,
    composition_matrix,
    kmer_frequencies,
    mutate_dna,
    random_genome,
    random_protein,
    read_fasta,
    shred_record,
    shred_records,
    split_fasta,
    synthetic_community,
    synthetic_nt_database,
    write_fasta,
)
from repro.bio.kmers import kmer_labels
from repro.bio.shred import parent_id


def _records(n=5, length=50, seed=0):
    return [
        SeqRecord(f"seq{i}", random_genome(length, seed_or_rng=seed + i), f"desc {i}")
        for i in range(n)
    ]


class TestFastaIO:
    def test_roundtrip_through_file(self, tmp_path):
        recs = _records()
        path = tmp_path / "test.fasta"
        assert write_fasta(recs, path) == len(recs)
        back = list(read_fasta(path))
        assert [(r.id, r.seq, r.description) for r in back] == [
            (r.id, r.seq, r.description) for r in recs
        ]

    def test_multiline_wrapping(self, tmp_path):
        rec = SeqRecord("long", random_genome(250, seed_or_rng=3))
        path = tmp_path / "wrap.fasta"
        write_fasta([rec], path, width=60)
        lines = path.read_text().splitlines()
        assert max(len(line) for line in lines[1:]) == 60
        assert list(read_fasta(path))[0].seq == rec.seq

    def test_parse_stringio_and_blank_lines(self):
        text = ">a first\nACGT\n\nACGT\n>b\nTTTT\n"
        recs = list(read_fasta(io.StringIO(text)))
        assert [(r.id, r.seq) for r in recs] == [("a", "ACGTACGT"), ("b", "TTTT")]
        assert recs[0].description == "first"

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError, match="before first"):
            list(read_fasta(io.StringIO("ACGT\n>x\nAC\n")))

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            write_fasta([], io.StringIO(), width=0)


class TestSplitFasta:
    def test_block_sizes_and_order(self, tmp_path):
        recs = _records(n=11)
        paths = split_fasta(recs, tmp_path / "blocks", seqs_per_block=4)
        assert len(paths) == 3
        sizes = [len(list(read_fasta(p))) for p in paths]
        assert sizes == [4, 4, 3]
        all_ids = [r.id for p in paths for r in read_fasta(p)]
        assert all_ids == [r.id for r in recs]

    def test_invalid_block_size(self, tmp_path):
        with pytest.raises(ValueError):
            split_fasta(_records(), tmp_path, seqs_per_block=0)


class TestFastaIndex:
    def test_index_counts_and_lengths(self, tmp_path):
        recs = _records(n=7, length=83)
        path = tmp_path / "idx.fasta"
        write_fasta(recs, path, width=30)
        idx = FastaIndex(path)
        assert len(idx) == 7
        assert idx.ids == [r.id for r in recs]
        assert idx.total_bases == 7 * 83
        assert idx.entry_length(3) == 83

    def test_load_range_matches_direct_read(self, tmp_path):
        recs = _records(n=9)
        path = tmp_path / "idx.fasta"
        write_fasta(recs, path)
        idx = FastaIndex(path)
        middle = idx.load_range(3, 6)
        assert [(r.id, r.seq) for r in middle] == [(r.id, r.seq) for r in recs[3:6]]
        assert idx.load_range(0, 0) == []
        tail = idx.load_range(8, 9)
        assert tail[0].id == recs[8].id

    def test_load_range_bounds(self, tmp_path):
        path = tmp_path / "idx.fasta"
        write_fasta(_records(n=2), path)
        idx = FastaIndex(path)
        with pytest.raises(IndexError):
            idx.load_range(0, 5)


class TestShred:
    def test_paper_parameters_400_200(self):
        rec = SeqRecord("g", random_genome(1000, seed_or_rng=5))
        frags = list(shred_record(rec, fragment=400, overlap=200))
        assert [f.id for f in frags] == ["g/0-400", "g/200-600", "g/400-800", "g/600-1000"]
        # Overlap check: consecutive fragments share 200 bases.
        assert frags[0].seq[200:] == frags[1].seq[:200]

    def test_short_sequence_single_fragment(self):
        rec = SeqRecord("s", "ACGTACGT")
        frags = list(shred_record(rec, fragment=400, overlap=200))
        assert len(frags) == 1
        assert frags[0].id == "s/0-8"

    def test_tail_fragment_kept(self):
        rec = SeqRecord("t", random_genome(450, seed_or_rng=1))
        frags = list(shred_record(rec, fragment=400, overlap=200))
        assert frags[-1].id == "t/200-450"
        assert len(frags[-1].seq) == 250

    def test_coverage_reconstructs_sequence(self):
        rec = SeqRecord("c", random_genome(1234, seed_or_rng=2))
        frags = list(shred_record(rec))
        rebuilt = frags[0].seq + "".join(f.seq[200:] for f in frags[1:])
        assert rebuilt == rec.seq

    def test_invalid_parameters(self):
        rec = SeqRecord("x", "ACGT")
        with pytest.raises(ValueError):
            list(shred_record(rec, fragment=0))
        with pytest.raises(ValueError):
            list(shred_record(rec, fragment=100, overlap=100))

    def test_parent_id_roundtrip(self):
        rec = SeqRecord("NC_0001.1", random_genome(900, seed_or_rng=0))
        for frag in shred_records([rec]):
            assert parent_id(frag.id) == "NC_0001.1"


class TestSimulate:
    def test_random_genome_gc_and_determinism(self):
        g1 = random_genome(5000, gc=0.7, seed_or_rng=42)
        g2 = random_genome(5000, gc=0.7, seed_or_rng=42)
        assert g1 == g2
        gc = sum(c in "GC" for c in g1) / len(g1)
        assert abs(gc - 0.7) < 0.03

    def test_random_genome_repeats_create_low_complexity(self):
        g = random_genome(4000, seed_or_rng=7, repeat_fraction=0.5, repeat_unit=8)
        v = kmer_frequencies(g, k=4)
        # Repeat-rich sequence concentrates k-mer mass vs uniform random.
        u = kmer_frequencies(random_genome(4000, seed_or_rng=8), k=4)
        assert v.max() > 2 * u.max()

    def test_mutate_dna_rates(self):
        g = random_genome(10_000, seed_or_rng=3)
        same = mutate_dna(g, rate=0.0, seed_or_rng=1)
        assert same == g
        mut = mutate_dna(g, rate=0.2, seed_or_rng=1, indel_fraction=0.0)
        diffs = sum(a != b for a, b in zip(g, mut))
        assert 0.15 < diffs / len(g) < 0.25

    def test_mutate_validation(self):
        with pytest.raises(ValueError):
            mutate_dna("ACGT", rate=1.5)

    def test_random_protein_alphabet(self):
        p = random_protein(500, seed_or_rng=9)
        assert set(p) <= set("ARNDCQEGHILKMFPSTWYV")

    def test_community_and_database(self):
        com = synthetic_community(n_genomes=4, genome_length=2000, seed=0)
        assert len(com.genomes) == 4
        assert com.total_bases == 8000
        db = synthetic_nt_database(com, n_decoys=3, decoy_length=1000, seed=1)
        assert len(db) == 7
        assert sum(1 for r in db if r.id.startswith("db_genome")) == 4


class TestKmers:
    def test_frequencies_sum_to_one(self):
        v = kmer_frequencies(random_genome(1000, seed_or_rng=0))
        assert v.shape == (256,)
        assert abs(v.sum() - 1.0) < 1e-12

    def test_known_counts_k2(self):
        v = kmer_frequencies("AACC", k=2, normalize=False)
        labels = kmer_labels(2)
        counts = dict(zip(labels, v))
        assert counts["AA"] == 1 and counts["AC"] == 1 and counts["CC"] == 1
        assert v.sum() == 3

    def test_short_sequence_zero_vector(self):
        v = kmer_frequencies("AC", k=4)
        assert v.sum() == 0

    def test_composition_matrix_shape(self):
        recs = _records(n=3, length=500)
        m = composition_matrix(recs)
        assert m.shape == (3, 256)
        np.testing.assert_allclose(m.sum(axis=1), 1.0)

    def test_composition_separates_gc_extremes(self):
        lo = SeqRecord("lo", random_genome(5000, gc=0.25, seed_or_rng=1))
        hi = SeqRecord("hi", random_genome(5000, gc=0.75, seed_or_rng=2))
        lo2 = SeqRecord("lo2", random_genome(5000, gc=0.25, seed_or_rng=3))
        m = composition_matrix([lo, hi, lo2])
        d_same = np.linalg.norm(m[0] - m[2])
        d_diff = np.linalg.norm(m[0] - m[1])
        assert d_diff > 2 * d_same

    def test_kmer_labels(self):
        labels = kmer_labels(1)
        assert labels == ["A", "C", "G", "T"]
        assert len(kmer_labels(3)) == 64
        with pytest.raises(ValueError):
            kmer_labels(0)


class TestGzipFasta:
    def test_gz_roundtrip(self, tmp_path):
        from repro.bio import read_fasta, write_fasta

        recs = _records(n=4, length=70)
        path = tmp_path / "c.fasta.gz"
        write_fasta(recs, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
        back = list(read_fasta(path))
        assert [(r.id, r.seq) for r in back] == [(r.id, r.seq) for r in recs]

    def test_gz_split_blocks(self, tmp_path):
        from repro.bio import read_fasta, split_fasta

        recs = _records(n=5)
        paths = split_fasta(recs, tmp_path, seqs_per_block=2, prefix="blk")
        # plain-text blocks still work alongside gz files in the same API
        assert sum(len(list(read_fasta(p))) for p in paths) == 5


class TestHomologCopies:
    def test_multiple_homologs_per_genome(self):
        com = synthetic_community(n_genomes=2, genome_length=1000, seed=0)
        db = synthetic_nt_database(com, n_decoys=1, decoy_length=500,
                                   homologs_per_genome=3)
        homolog_ids = [r.id for r in db if r.id.startswith("db_genome")]
        assert len(homolog_ids) == 6
        assert "db_genome000" in homolog_ids and "db_genome000_v2" in homolog_ids

    def test_validation(self):
        com = synthetic_community(n_genomes=1, genome_length=500, seed=0)
        with pytest.raises(ValueError):
            synthetic_nt_database(com, homologs_per_genome=0)
