"""Alphabets, sequence records, transforms."""

import numpy as np
import pytest

from repro.bio import DNA, PROTEIN, SeqRecord, reverse_complement, translate


class TestAlphabets:
    def test_dna_encode_decode_roundtrip(self):
        seq = "ACGTACGT"
        codes = DNA.encode(seq)
        np.testing.assert_array_equal(codes, [0, 1, 2, 3, 0, 1, 2, 3])
        assert DNA.decode(codes) == seq

    def test_dna_lowercase_and_ambiguity(self):
        assert DNA.decode(DNA.encode("acgt")) == "ACGT"
        assert DNA.decode(DNA.encode("NU")) == "AT"  # N->A, U->T

    def test_dna_invalid_character(self):
        with pytest.raises(ValueError, match="invalid characters"):
            DNA.encode("ACG!")
        assert not DNA.is_valid("AC-GT")
        assert DNA.is_valid("ACGTN")

    def test_protein_blosum_order(self):
        assert PROTEIN.letters[:4] == "ARND"
        codes = PROTEIN.encode("ARND")
        np.testing.assert_array_equal(codes, [0, 1, 2, 3])

    def test_protein_rare_aliases(self):
        assert PROTEIN.decode(PROTEIN.encode("JUO")) == "LCK"

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            DNA.decode(np.array([7], dtype=np.uint8))


class TestSeqRecord:
    def test_uppercases_and_header(self):
        rec = SeqRecord("id1", "acgt", "some description")
        assert rec.seq == "ACGT"
        assert rec.header == "id1 some description"
        assert len(rec) == 4

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            SeqRecord("", "ACGT")

    def test_slice_records_coordinates(self):
        rec = SeqRecord("chr1", "ACGTACGTAC")
        sub = rec.slice(2, 6)
        assert sub.id == "chr1:2-6"
        assert sub.seq == "GTAC"

    def test_slice_bounds_checked(self):
        rec = SeqRecord("x", "ACGT")
        with pytest.raises(ValueError):
            rec.slice(2, 9)
        with pytest.raises(ValueError):
            rec.slice(3, 3)


class TestTransforms:
    def test_reverse_complement_involution(self):
        seq = "ACGTTGCAN"
        assert reverse_complement(reverse_complement(seq)) == seq

    def test_reverse_complement_known(self):
        assert reverse_complement("AACG") == "CGTT"

    def test_translate_standard_code(self):
        assert translate("ATGAAATAG") == "MK"
        assert translate("ATGAAATAG", stop=False) == "MK*"

    def test_translate_frames(self):
        seq = "XATGGCC".replace("X", "G")
        assert translate(seq, frame=1) == "MA"

    def test_translate_ambiguity_gives_x(self):
        assert translate("ATGNNN", stop=False) == "MX"

    def test_translate_bad_frame(self):
        with pytest.raises(ValueError):
            translate("ATG", frame=3)
