"""The discrete-event kernel: ordering, processes, resources, determinism."""

import pytest

from repro.simtime import Environment, Interrupt, Resource, Store


class TestEventsAndProcesses:
    def test_timeout_advances_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5.0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert env.now == 5.0
        assert p.value == 5.0

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        marks = []

        def proc(env):
            for d in (1.0, 2.0, 3.5):
                yield env.timeout(d)
                marks.append(env.now)

        env.process(proc(env))
        env.run()
        assert marks == [1.0, 3.0, 6.5]

    def test_same_time_events_fire_in_schedule_order(self):
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_waiting_on_process_completion(self):
        env = Environment()

        def child(env):
            yield env.timeout(2.0)
            return 42

        def parent(env):
            value = yield env.process(child(env))
            return (env.now, value)

        p = env.process(parent(env))
        env.run()
        assert p.value == (2.0, 42)

    def test_event_succeed_wakes_waiter(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter(env):
            v = yield gate
            log.append((env.now, v))

        def opener(env):
            yield env.timeout(3.0)
            gate.succeed("open")

        env.process(waiter(env))
        env.process(opener(env))
        env.run()
        assert log == [(3.0, "open")]

    def test_waiting_on_already_completed_process(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)
            return "early"

        done = env.process(quick(env))

        def late(env):
            yield env.timeout(5.0)
            v = yield done
            return (env.now, v)

        p = env.process(late(env))
        env.run()
        assert p.value == (5.0, "early")

    def test_run_until_stops_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(100.0)

        env.process(proc(env))
        env.run(until=10.0)
        assert env.now == 10.0

    def test_interrupt_delivers_exception(self):
        env = Environment()
        caught = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as exc:
                caught.append((env.now, exc.cause))

        def killer(env, victim):
            yield env.timeout(2.0)
            victim.interrupt("stop now")

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run()
        assert caught == [(2.0, "stop now")]

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(TypeError):
            env.run()

    def test_determinism_under_repetition(self):
        def build_and_run():
            env = Environment()
            trace = []

            def proc(env, k):
                for i in range(3):
                    yield env.timeout(0.5 * (k + 1))
                    trace.append((round(env.now, 6), k, i))

            for k in range(5):
                env.process(proc(env, k))
            env.run()
            return trace

        assert build_and_run() == build_and_run()


class TestResource:
    def test_capacity_enforced(self):
        env = Environment()
        res = Resource(env, capacity=2)
        active = []
        peak = []

        def worker(env, k):
            yield res.request()
            active.append(k)
            peak.append(len(active))
            yield env.timeout(1.0)
            active.remove(k)
            res.release()

        for k in range(5):
            env.process(worker(env, k))
        env.run()
        assert max(peak) == 2
        assert env.now == pytest.approx(3.0)  # 5 jobs, 2 at a time, 1s each

    def test_release_without_request(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(RuntimeError):
            res.release()

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        def producer(env):
            for i in range(3):
                yield env.timeout(1.0)
                store.put(i)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [0, 1, 2]

    def test_get_before_put_blocks(self):
        env = Environment()
        store = Store(env)
        times = []

        def consumer(env):
            item = yield store.get()
            times.append((env.now, item))

        def producer(env):
            yield env.timeout(7.0)
            store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [(7.0, "late")]

    def test_prefilled_store(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        assert len(store) == 1

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        p = env.process(consumer(env))
        env.run()
        assert p.value == (0.0, "x")


class TestCombinators:
    def test_allof_waits_for_slowest(self):
        from repro.simtime import AllOf

        env = Environment()

        def child(env, d, v):
            yield env.timeout(d)
            return v

        def parent(env):
            a = env.process(child(env, 3.0, "a"))
            b = env.process(child(env, 1.0, "b"))
            values = yield AllOf(env, [a, b])
            return (env.now, values)

        p = env.process(parent(env))
        env.run()
        assert p.value == (3.0, ["a", "b"])

    def test_anyof_returns_first(self):
        from repro.simtime import AnyOf

        env = Environment()

        def parent(env):
            slow = env.timeout(5.0, "slow")
            fast = env.timeout(1.0, "fast")
            index, value = yield AnyOf(env, [slow, fast])
            return (env.now, index, value)

        p = env.process(parent(env))
        env.run()
        assert p.value == (1.0, 1, "fast")

    def test_allof_with_already_completed_event(self):
        from repro.simtime import AllOf

        env = Environment()

        def quick(env):
            yield env.timeout(1.0)
            return 42

        done = env.process(quick(env))

        def parent(env):
            yield env.timeout(2.0)  # `done` finished long ago
            values = yield AllOf(env, [done])
            return values

        p = env.process(parent(env))
        env.run()
        assert p.value == [42]

    def test_combinator_validation(self):
        import pytest as _pytest

        from repro.simtime import AllOf, AnyOf

        env = Environment()
        with _pytest.raises(ValueError):
            AllOf(env, [])
        with _pytest.raises(ValueError):
            AnyOf(env, [])
        with _pytest.raises(TypeError):
            AllOf(env, [42])
