"""Point-to-point semantics of the in-process MPI runtime."""

import numpy as np
import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    AbortError,
    DeadlockError,
    MPIError,
    Status,
    run_spmd,
)


def test_send_recv_roundtrip():
    def main(comm):
        if comm.rank == 0:
            comm.send({"x": 1, "y": [1, 2, 3]}, dest=1, tag=7)
            return None
        return comm.recv(source=0, tag=7)

    results = run_spmd(2, main)
    assert results[1] == {"x": 1, "y": [1, 2, 3]}


def test_fifo_ordering_same_source_tag():
    """Messages from one sender with the same tag arrive in send order."""

    def main(comm):
        if comm.rank == 0:
            for i in range(50):
                comm.send(i, dest=1, tag=3)
            return None
        return [comm.recv(source=0, tag=3) for _ in range(50)]

    results = run_spmd(2, main)
    assert results[1] == list(range(50))


def test_tag_selective_receive_out_of_order():
    """A receive can pick a later-sent message by tag, skipping earlier ones."""

    def main(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    assert run_spmd(2, main)[1] == ("first", "second")


def test_any_source_any_tag_with_status():
    def main(comm):
        if comm.rank == 0:
            received = []
            for _ in range(comm.size - 1):
                st = Status()
                val = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=st)
                assert val == st.Get_source() * 100
                assert st.Get_tag() == st.Get_source()
                received.append(st.Get_source())
            return sorted(received)
        comm.send(comm.rank * 100, dest=0, tag=comm.rank)
        return None

    assert run_spmd(4, main)[0] == [1, 2, 3]


def test_payload_isolation_mutable_objects():
    """Sender-side mutation after send must not leak to the receiver."""

    def main(comm):
        if comm.rank == 0:
            payload = [1, 2, 3]
            comm.send(payload, dest=1)
            payload.append(99)  # must not be visible on rank 1
            return None
        return comm.recv(source=0)

    assert run_spmd(2, main)[1] == [1, 2, 3]


def test_numpy_send_recv_inplace():
    def main(comm):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        if comm.rank == 0:
            comm.Send(a * 2, dest=1, tag=5)
            return None
        buf = np.zeros((2, 3))
        st = Status()
        comm.Recv(buf, source=0, tag=5, status=st)
        assert st.Get_count() == 6
        return buf

    out = run_spmd(2, main)[1]
    np.testing.assert_array_equal(out, np.arange(6, dtype=np.float64).reshape(2, 3) * 2)


def test_recv_buffer_size_mismatch_raises():
    def main(comm):
        if comm.rank == 0:
            comm.Send(np.zeros(3), dest=1)
            return None
        with pytest.raises(MPIError, match="buffer size"):
            comm.Recv(np.zeros(5), source=0)
        return True

    assert run_spmd(2, main)[1] is True


def test_sendrecv_exchange():
    def main(comm):
        peer = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        return comm.sendrecv(comm.rank, dest=peer, source=src)

    results = run_spmd(4, main)
    assert results == [3, 0, 1, 2]


def test_isend_irecv():
    def main(comm):
        if comm.rank == 0:
            req = comm.isend("async", dest=1, tag=9)
            req.wait()
            return None
        req = comm.irecv(source=0, tag=9)
        return req.wait()

    assert run_spmd(2, main)[1] == "async"


def test_irecv_test_polls():
    def main(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=0)  # wait for the go signal
            comm.send("late", dest=1, tag=1)
            return None
        req = comm.irecv(source=0, tag=1)
        flag, _ = req.test()
        assert flag is False  # nothing sent yet
        comm.send("go", dest=0, tag=0)
        return req.wait()

    assert run_spmd(2, main)[1] == "late"


def test_probe_and_iprobe():
    def main(comm):
        if comm.rank == 0:
            comm.send(b"payload", dest=1, tag=4)
            return None
        st = comm.probe(source=0, tag=4)
        assert st.Get_count() == len(b"payload")
        assert comm.iprobe(source=0, tag=4)
        comm.recv(source=0, tag=4)
        assert not comm.iprobe(source=0, tag=4)
        return True

    assert run_spmd(2, main)[1] is True


def test_negative_user_tag_rejected():
    def main(comm):
        with pytest.raises(MPIError, match="tags must be >= 0"):
            comm.send(1, dest=0, tag=-5)
        return True

    assert run_spmd(1, main)[0] is True


def test_invalid_peer_rank_rejected():
    def main(comm):
        with pytest.raises(MPIError, match="peer rank"):
            comm.send(1, dest=7)
        return True

    assert run_spmd(2, main) == [True, True]


def test_deadlock_detection():
    """Two ranks both receiving first must time out, not hang."""

    def main(comm):
        comm.recv(source=(comm.rank + 1) % 2, tag=0)

    with pytest.raises((DeadlockError, AbortError)):
        run_spmd(2, main, op_timeout=0.3)


def test_exception_propagates_and_aborts_peers():
    def main(comm):
        if comm.rank == 1:
            raise ValueError("boom on rank 1")
        comm.recv(source=1)  # would block forever without abort

    with pytest.raises(ValueError, match="boom on rank 1"):
        run_spmd(2, main, op_timeout=30)
