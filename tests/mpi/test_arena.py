"""Shared-arena fabric: slot lifecycle, packed codec, parity, leak hygiene.

Three layers of coverage:

- :class:`~repro.mpi.arena.Arena` primitives in-process (alloc / view /
  GC-release / wraparound reuse / overflow), with two endpoints attached
  to the same segments the way two ranks would be;
- the packed arena codec (:func:`~repro.mpi.shm.pack_arena_message` /
  ``unpack_arena_message``) over the full payload grammar;
- end-to-end process-backend runs: arena-on/off parity, forced overflow
  fallback, stats surfaces, and no leaked ``/dev/shm`` segments even when
  a rank crashes mid-exchange.
"""

import gc
import os

import numpy as np
import pytest

from repro.mpi import CrashRank, FaultPlan, MPIError, run_spmd
from repro.mpi.arena import (
    MAX_SLOTS,
    Arena,
    _release_slot,
    create_arena_segments,
    resolve_arena_bytes,
    segment_name,
)
from repro.mpi.network import Message
from repro.mpi.runtime import SpmdJob
from repro.mpi.shm import (
    FRAME_ARENA,
    pack_arena_message,
    sweep_job_blocks,
    unpack_arena_message,
)

RING = 1 << 20  # 1 MiB data region per endpoint


def _shm_blocks(prefix="reprompi"):
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith(prefix)}
    except OSError:  # pragma: no cover - non-Linux shm layout
        return set()


@pytest.fixture
def arena_pair():
    """Two endpoints of a 2-rank arena, torn down (and swept) afterwards."""
    prefix = f"reprompi_arena_t{os.getpid()}_"
    create_arena_segments(prefix, 2, RING)
    a0 = Arena(prefix, 0, 2, RING)
    a1 = Arena(prefix, 1, 2, RING)
    try:
        yield a0, a1
    finally:
        gc.collect()  # drop any straggler views before unmapping
        a0.close()
        a1.close()
        sweep_job_blocks(prefix)
        assert _shm_blocks(prefix) == set()


class TestSlotLifecycle:
    def test_view_is_zero_copy_and_read_only(self, arena_pair):
        a0, a1 = arena_pair
        slot, epoch, off = a0.alloc(64)
        a0.own_slice(off, 64)[:] = b"\x2a" * 64
        view = a1.view(0, slot, epoch, off, 64)
        assert bytes(view) == b"\x2a" * 64
        assert not view.flags.writeable
        typed = view.view(np.uint32)
        assert np.shares_memory(view, typed)
        with pytest.raises(ValueError):
            typed[0] = 1
        # Same physical page through both mappings: a sender-side write
        # after view creation is visible to the receiver (no copy hid it).
        a0.own_slice(off, 64)[:1] = b"\x07"
        assert view[0] == 0x07

    def test_release_on_gc_returns_extent(self, arena_pair):
        a0, a1 = arena_pair
        slot, epoch, off = a0.alloc(RING - 64)  # nearly the whole ring
        assert a0.alloc(RING // 2) is None  # ring full -> overflow
        view = a1.view(0, slot, epoch, off, RING - 64)
        del view
        gc.collect()
        assert a0.alloc(RING // 2) is not None  # extent reclaimed

    def test_slot_reuse_under_wraparound(self, arena_pair):
        a0, a1 = arena_pair
        rounds = MAX_SLOTS * 2 + 50  # every slot reused at least twice
        for i in range(rounds):
            got = a0.alloc(4096)
            assert got is not None, f"round {i}: spurious overflow"
            slot, epoch, off = got
            pattern = bytes([i % 251]) * 4096
            a0.own_slice(off, 4096)[:] = pattern
            view = a1.view(0, slot, epoch, off, 4096)
            assert bytes(view[:16]) == pattern[:16]
            del view  # refcount release -> finalizer -> slot freed
        assert a0.stats.sends == rounds
        assert a0.stats.overflows == 0
        a0._reclaim()
        assert a0.stats.resident_bytes == 0

    def test_stale_epoch_release_is_ignored(self, arena_pair):
        a0, a1 = arena_pair
        slot, epoch, off = a0.alloc(128)
        view = a1.view(0, slot, epoch, off, 128)
        del view
        gc.collect()
        slot2, epoch2, _ = a0.alloc(128)  # LIFO free-list: same slot, new epoch
        assert slot2 == slot and epoch2 == epoch + 1
        _release_slot(a0._hdr, slot, epoch)  # stale receiver wakes up late
        a0._reclaim()
        assert slot in a0._outstanding  # new tenant untouched

    def test_oversized_alloc_overflows(self, arena_pair):
        a0, _ = arena_pair
        assert a0.alloc(RING * 2) is None
        assert a0.stats.overflows == 1
        assert a0.stats.overflow_bytes == RING * 2

    def test_resolve_arena_bytes_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_MPI_ARENA_MB", raising=False)
        assert resolve_arena_bytes(False, 128) == 0
        assert resolve_arena_bytes(None, 8) == 8 << 20
        assert resolve_arena_bytes(None, None) == 64 << 20
        monkeypatch.setenv("REPRO_MPI_ARENA_MB", "16")
        assert resolve_arena_bytes(None, None) == 16 << 20
        assert resolve_arena_bytes(None, 8) == 8 << 20  # explicit beats env
        monkeypatch.setenv("REPRO_MPI_ARENA_MB", "0")
        assert resolve_arena_bytes(None, None) == 0
        assert resolve_arena_bytes(True, None) == 64 << 20  # arena=True stays on
        monkeypatch.setenv("REPRO_MPI_ARENA_MB", "elephants")
        with pytest.raises(ValueError):
            resolve_arena_bytes(None, None)

    def test_segment_names_share_job_prefix(self):
        assert segment_name("reprompi12_", 3) == "reprompi12_arena3"


class TestArenaCodec:
    def _round_trip(self, arena_pair, payload):
        a0, a1 = arena_pair
        msg = Message(src=0, dst=1, tag=7, context=3, payload=payload,
                      not_before=1.25)
        frame = pack_arena_message(msg, a0)
        assert frame is not None and frame[0] == FRAME_ARENA
        out = unpack_arena_message(frame, a1)
        assert (out.src, out.dst, out.tag, out.context, out.not_before) == \
            (0, 1, 7, 3, 1.25)
        return out.payload

    def test_bare_array(self, arena_pair):
        arr = np.linspace(0.0, 1.0, 1000)
        got = self._round_trip(arena_pair, arr)
        np.testing.assert_array_equal(got, arr)
        assert got.dtype == arr.dtype
        assert not got.flags.writeable

    def test_nested_containers_with_nones(self, arena_pair):
        payload = [
            None,
            np.arange(10, dtype=np.int32),
            (np.ones((3, 4)), np.zeros(0, dtype=np.uint8)),
        ]
        got = self._round_trip(arena_pair, payload)
        assert isinstance(got, list) and len(got) == 3
        assert got[0] is None
        np.testing.assert_array_equal(got[1], np.arange(10, dtype=np.int32))
        assert isinstance(got[2], tuple)
        np.testing.assert_array_equal(got[2][0], np.ones((3, 4)))
        assert got[2][1].size == 0 and got[2][1].dtype == np.uint8

    def test_structured_and_unicode_dtypes(self, arena_pair):
        rec = np.array([(1, 2.5), (3, 4.5)],
                       dtype=[("k", "<i8"), ("v", "<f8")])
        sids = np.array(["subject_a", "s2", "a-much-longer-subject-id"])
        got_rec, got_sids = self._round_trip(arena_pair, (rec, sids))
        np.testing.assert_array_equal(got_rec, rec)
        assert got_rec.dtype == rec.dtype
        assert got_sids.tolist() == sids.tolist()
        assert got_sids.dtype == sids.dtype

    def test_non_contiguous_sender_arrays(self, arena_pair):
        base = np.arange(64, dtype=np.int64)
        got = self._round_trip(arena_pair, (base[::2], base.reshape(8, 8).T))
        np.testing.assert_array_equal(got[0], base[::2])
        np.testing.assert_array_equal(got[1], base.reshape(8, 8).T)

    def test_ineligible_payloads_decline(self, arena_pair):
        a0, _ = arena_pair
        for payload in (None, {"a": 1}, [1, 2, 3],
                        np.array([object()], dtype=object), "text"):
            msg = Message(src=0, dst=1, tag=0, context=0, payload=payload)
            assert pack_arena_message(msg, a0) is None

    def test_views_release_slots_when_dropped(self, arena_pair):
        a0, a1 = arena_pair
        msg = Message(src=0, dst=1, tag=0, context=0,
                      payload=np.arange(50_000, dtype=np.float64))
        got = unpack_arena_message(pack_arena_message(msg, a0), a1)
        assert a0.stats.resident_bytes > 0
        del got
        gc.collect()
        a0._reclaim()
        assert a0.stats.resident_bytes == 0

    def test_release_is_refcount_driven_not_gc_driven(self, arena_pair):
        # Regression: a self-recursive closure in the payload rebuilder
        # once made every decoded payload part of a reference cycle, so
        # slots freed only when the *cyclic* GC happened to run and the
        # sender's ring crawled into cold pages.  With gc disabled, a
        # plain del must reclaim the slot immediately.
        a0, a1 = arena_pair
        gc.disable()
        try:
            gc.collect()
            for payload in (
                np.arange(4096, dtype=np.float64),
                [None, np.arange(10), (np.ones((3, 4)), np.zeros(0))],
            ):
                msg = Message(src=0, dst=1, tag=0, context=0, payload=payload)
                got = unpack_arena_message(pack_arena_message(msg, a0), a1)
                del got, msg
                a0._reclaim()
                assert a0.stats.resident_bytes == 0, (
                    "slot not reclaimed by refcounting alone — a reference "
                    "cycle is keeping receiver views alive")
        finally:
            gc.enable()


def _exchange_prog(comm):
    """Mixed alltoall + allgather returning plain data for comparison."""
    cols = (
        np.arange(1000, dtype=np.int64) + comm.rank,
        np.full(1000, float(comm.rank)),
        np.array([f"rank{comm.rank}-{d}" for d in range(4)]),
    )
    inbox = comm.alltoall([cols] * comm.size)
    gathered = comm.allgather(np.full(256, comm.rank, dtype=np.int32))
    return (
        [(a.tolist(), b.tolist(), c.tolist()) for a, b, c in inbox],
        [g.tolist() for g in gathered],
    )


class TestProcessBackendEndToEnd:
    def test_arena_on_off_parity(self):
        on = run_spmd(3, _exchange_prog, backend="process",
                      op_timeout=30.0, arena=True)
        off = run_spmd(3, _exchange_prog, backend="process",
                       op_timeout=30.0, arena=False)
        assert on == off

    def test_overflow_falls_back_and_stays_correct(self):
        def prog(comm):
            big = np.full((comm.rank + 1) * 300_000, comm.rank, np.float64)
            inbox = comm.alltoall([big] * comm.size)
            return [float(a.sum()) for a in inbox]

        # 1 MiB ring vs multi-MiB payloads: every send overflows to the
        # per-message path; results must match the arena-off oracle.
        job = SpmdJob(2, prog, op_timeout=30.0, backend="process",
                      arena=True, arena_mb=1)
        with_arena = job.run(join_timeout=60.0)
        stats = job.network.arena_stats()
        assert stats["overflows"] > 0
        without = run_spmd(2, prog, backend="process", op_timeout=30.0,
                           arena=False)
        assert with_arena == without

    def test_arena_stats_surface(self):
        before = _shm_blocks()
        job = SpmdJob(2, _exchange_prog, op_timeout=30.0, backend="process",
                      arena=True, arena_mb=8)
        job.run(join_timeout=60.0)
        stats = job.network.arena_stats()
        assert stats["sends"] > 0
        assert stats["recv_views"] > 0
        assert stats["send_bytes"] > 0
        assert stats["peak_resident_bytes"] > 0
        assert _shm_blocks() == before

    def test_received_arrays_are_read_only(self):
        def prog(comm):
            inbox = comm.alltoall([np.arange(5000.0)] * comm.size)
            other = inbox[(comm.rank + 1) % comm.size]
            try:
                other[0] = -1.0
            except ValueError:
                return True
            return False

        assert run_spmd(2, prog, backend="process", op_timeout=30.0,
                        arena=True) == [True, True]

    def test_crash_mid_exchange_leaves_no_segments(self):
        before = _shm_blocks()

        def prog(comm):
            for _ in range(6):
                comm.alltoall([np.arange(20_000.0)] * comm.size)
            return comm.rank

        with pytest.raises(MPIError):
            run_spmd(2, prog, backend="process", op_timeout=10.0,
                     arena=True, fault_plan=FaultPlan([CrashRank(1, at_op=3)]))
        assert _shm_blocks() == before

    def test_thread_backend_ignores_arena_knobs(self):
        job = SpmdJob(2, _exchange_prog, op_timeout=30.0, backend="thread",
                      arena=True, arena_mb=8)
        results = job.run(join_timeout=60.0)
        assert results[0] == results[1]
        assert job.network.arena_stats() == {}
