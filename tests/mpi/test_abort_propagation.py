"""One rank raising inside a collective must wake every peer with AbortError.

The failure mode being guarded against is a *hang*: an exception on one rank
while its peers sit blocked in a binomial tree or dissemination barrier.
MPI_Abort semantics require the whole job to come down promptly — peers get
:class:`AbortError`, the caller gets the original exception, nobody waits
for the op timeout.
"""

import pytest

from repro.mpi import AbortError
from repro.mpi.runtime import BACKENDS, SpmdJob

NPROCS = 4

pytestmark = pytest.mark.parametrize("backend", BACKENDS)


class Boom(RuntimeError):
    pass


COLLECTIVES = {
    "barrier": lambda comm: comm.barrier(),
    "bcast": lambda comm: comm.bcast("x" if comm.rank == 0 else None, root=0),
    "reduce": lambda comm: comm.reduce(comm.rank, root=0),
    "allreduce": lambda comm: comm.allreduce(comm.rank),
    "gather": lambda comm: comm.gather(comm.rank, root=0),
    "allgather": lambda comm: comm.allgather(comm.rank),
    "scatter": lambda comm: comm.scatter(
        list(range(comm.size)) if comm.rank == 0 else None, root=0
    ),
    "alltoall": lambda comm: comm.alltoall([comm.rank] * comm.size),
    "scan": lambda comm: comm.scan(comm.rank),
}


@pytest.mark.parametrize("failing_rank", [0, 2, NPROCS - 1])
@pytest.mark.parametrize("name", sorted(COLLECTIVES))
def test_exception_in_collective_wakes_all_peers(name, failing_rank, backend):
    op = COLLECTIVES[name]

    def prog(comm):
        comm.barrier()  # everyone reaches the collective together
        if comm.rank == failing_rank:
            raise Boom(f"rank {comm.rank} dies in {name}")
        return op(comm)

    # A generous op_timeout proves peers are *woken*, not timed out: were the
    # abort lost, the job would burn the full budget and fail differently.
    job = SpmdJob(NPROCS, prog, op_timeout=30.0, backend=backend)
    with pytest.raises(Boom):
        job.run(join_timeout=10.0)
    for rank, err in enumerate(job.errors):
        if rank == failing_rank:
            assert isinstance(err, Boom)
        else:
            assert err is None or isinstance(err, AbortError)


def test_exception_before_any_collective_still_aborts_peers(backend):
    def prog(comm):
        if comm.rank == 1:
            raise Boom("early death")
        # Peers head into a collective that can never complete without rank 1.
        return comm.allreduce(comm.rank)

    job = SpmdJob(NPROCS, prog, op_timeout=30.0, backend=backend)
    with pytest.raises(Boom):
        job.run(join_timeout=10.0)
    assert any(isinstance(e, AbortError) for e in job.errors)


def test_nested_collectives_abort_cleanly(backend):
    """A failure several collectives deep must not strand earlier state."""

    def prog(comm):
        for i in range(5):
            comm.allreduce(i)
            comm.barrier()
        if comm.rank == 3:
            raise Boom("late death")
        comm.bcast(None, root=0)
        comm.barrier()
        return "done"

    job = SpmdJob(NPROCS, prog, op_timeout=30.0, backend=backend)
    with pytest.raises(Boom):
        job.run(join_timeout=10.0)
