"""Collective operations, validated against numpy references at many sizes."""

import numpy as np
import pytest

from repro.mpi import MAX, MAXLOC, MIN, MINLOC, PROD, SUM, LAND, LOR, MPIError, run_spmd

SIZES = [1, 2, 3, 4, 5, 7, 8, 13]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_all_roots_and_sizes(size, root):
    root = size - 1 if root == "last" else root

    def main(comm):
        obj = {"data": list(range(10))} if comm.rank == root else None
        return comm.bcast(obj, root=root)

    results = run_spmd(size, main)
    assert all(r == {"data": list(range(10))} for r in results)


@pytest.mark.parametrize("size", SIZES)
def test_reduce_sum_matches_formula(size):
    def main(comm):
        return comm.reduce(comm.rank + 1, op=SUM, root=0)

    results = run_spmd(size, main)
    assert results[0] == size * (size + 1) // 2
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize(
    "op,ref",
    [
        (SUM, sum),
        (PROD, lambda xs: int(np.prod(xs))),
        (MIN, min),
        (MAX, max),
    ],
)
def test_allreduce_ops(size, op, ref):
    def main(comm):
        return comm.allreduce(comm.rank + 2, op=op)

    results = run_spmd(size, main)
    expected = ref([r + 2 for r in range(size)])
    assert results == [expected] * size


def test_allreduce_logical_ops():
    def main(comm):
        any_true = comm.allreduce(comm.rank == 2, op=LOR)
        all_true = comm.allreduce(comm.rank < 3, op=LAND)
        return (any_true, all_true)

    assert run_spmd(4, main) == [(True, False)] * 4


def test_maxloc_minloc():
    values = [3.0, 9.0, 9.0, 1.0]

    def main(comm):
        pair = (values[comm.rank], comm.rank)
        return (comm.allreduce(pair, op=MAXLOC), comm.allreduce(pair, op=MINLOC))

    results = run_spmd(4, main)
    # Ties resolve to the lowest rank, matching MPI_MAXLOC.
    assert results == [((9.0, 1), (1.0, 3))] * 4


@pytest.mark.parametrize("size", SIZES)
def test_barrier_completes(size):
    def main(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert run_spmd(size, main) == [True] * size


def test_barrier_synchronizes_phases():
    """No rank may enter phase 2 before every rank finished phase 1."""
    import threading

    phase1_done = [False] * 4
    violations = []
    lock = threading.Lock()

    def main(comm):
        with lock:
            phase1_done[comm.rank] = True
        comm.barrier()
        with lock:
            if not all(phase1_done):
                violations.append(comm.rank)

    run_spmd(4, main)
    assert violations == []


@pytest.mark.parametrize("size", SIZES)
def test_gather_scatter_roundtrip(size):
    def main(comm):
        gathered = comm.gather(comm.rank * 11, root=0)
        items = [x + 1 for x in gathered] if comm.rank == 0 else None
        return comm.scatter(items, root=0)

    results = run_spmd(size, main)
    assert results == [r * 11 + 1 for r in range(size)]


def test_scatter_wrong_length_raises():
    def main(comm):
        if comm.rank == 0:
            with pytest.raises(MPIError, match="scatter needs exactly"):
                comm.scatter([1], root=0)
            comm.scatter([10, 20], root=0)
            return None
        return comm.scatter(root=0)

    assert run_spmd(2, main)[1] == 20


@pytest.mark.parametrize("size", SIZES)
def test_allgather(size):
    def main(comm):
        return comm.allgather(comm.rank**2)

    expected = [r**2 for r in range(size)]
    assert run_spmd(size, main) == [expected] * size


@pytest.mark.parametrize("size", [1, 2, 4, 7])
def test_alltoall_transpose(size):
    def main(comm):
        send = [(comm.rank, dst) for dst in range(comm.size)]
        return comm.alltoall(send)

    results = run_spmd(size, main)
    for dst in range(size):
        assert results[dst] == [(src, dst) for src in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_scan_exscan(size):
    def main(comm):
        return (comm.scan(comm.rank + 1), comm.exscan(comm.rank + 1))

    results = run_spmd(size, main)
    prefix = np.cumsum(np.arange(1, size + 1))
    for r, (inc, exc) in enumerate(results):
        assert inc == prefix[r]
        assert exc == (None if r == 0 else prefix[r - 1])


def test_numpy_reduce_and_bcast_buffers():
    def main(comm):
        send = np.full((3, 2), float(comm.rank + 1))
        recv = np.zeros((3, 2)) if comm.rank == 0 else None
        comm.Reduce(send, recv, op=SUM, root=0)
        codebook = recv if comm.rank == 0 else np.zeros((3, 2))
        comm.Bcast(codebook, root=0)
        return codebook

    size = 4
    results = run_spmd(size, main)
    expected = np.full((3, 2), float(sum(range(1, size + 1))))
    for arr in results:
        np.testing.assert_array_equal(arr, expected)


def test_reduce_rank_order_for_noncommutative_combine():
    """The tree reduction must combine partial results in rank order."""

    def main(comm):
        return comm.reduce([comm.rank], op=SUM, root=0)  # list concat

    for size in SIZES:
        results = run_spmd(size, main)
        assert results[0] == list(range(size))


@pytest.mark.parametrize("size", [2, 4, 6])
def test_split_subcommunicators_are_isolated(size):
    def main(comm):
        sub = comm.split(color=comm.rank % 2, key=-comm.rank)
        # key=-rank reverses the rank order inside each colour group.
        total = sub.allreduce(comm.rank)
        return (sub.rank, sub.size, total)

    results = run_spmd(size, main)
    evens = [r for r in range(size) if r % 2 == 0]
    odds = [r for r in range(size) if r % 2 == 1]
    for r, (sub_rank, sub_size, total) in enumerate(results):
        group = evens if r % 2 == 0 else odds
        assert sub_size == len(group)
        assert total == sum(group)
        # reversed order: highest old rank becomes sub-rank 0
        assert sub_rank == sorted(group, reverse=True).index(r)


def test_split_undefined_color_returns_none():
    def main(comm):
        sub = comm.split(color=None if comm.rank == 0 else 1)
        if comm.rank == 0:
            return sub is None
        return sub.size

    results = run_spmd(3, main)
    assert results == [True, 2, 2]


def test_dup_isolates_contexts():
    def main(comm):
        dup = comm.dup()
        if comm.rank == 0:
            dup.send("via-dup", dest=1, tag=0)
            comm.send("via-world", dest=1, tag=0)
            return None
        # Receive from world first: the dup message must not match.
        world_msg = comm.recv(source=0, tag=0)
        dup_msg = dup.recv(source=0, tag=0)
        return (world_msg, dup_msg)

    assert run_spmd(2, main)[1] == ("via-world", "via-dup")


def test_no_message_leaks_after_collectives():
    """After a rank exits a barrier its own mailbox must be drained.

    (The global mailbox count is racy — peers may still be inside the
    barrier — so each rank checks only the messages addressed to itself.)
    """

    def main(comm):
        comm.allreduce(1)
        comm.barrier()
        comm.allgather(comm.rank)
        comm.barrier()
        return comm.network.pending_count(dst=comm.rank)

    results = run_spmd(5, main)
    assert all(n == 0 for n in results)
