"""Process-transport specifics: shared memory, pickling edges, telemetry.

The generic MPI semantics (matching, collectives, aborts, faults) are
covered by the backend-parametrized suites; this file pins down what is
unique to ranks-as-processes — the shared-memory payload codec, pipe
pickling of results and exceptions, per-process trace merging, and the
shared heartbeat/op-count surfaces the supervisor reads.
"""

import os

import numpy as np
import pytest

from repro.mpi import AbortError, MPIError, run_spmd
from repro.mpi.runtime import BACKENDS, SpmdJob, resolve_backend
from repro.mpi.shm import (
    SHM_MIN_BYTES,
    ShmHandle,
    decode_payload,
    encode_payload,
    sweep_job_blocks,
)
from repro.obs.trace import TraceSession


def _shm_blocks(prefix="reprompi"):
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith(prefix)}
    except OSError:  # pragma: no cover - non-Linux shm layout
        return set()


class TestCollectivesSanity:
    def test_mixed_collectives(self):
        def prog(comm):
            total = comm.allreduce(comm.rank)
            ranks = comm.allgather(comm.rank)
            comm.barrier()
            inbox = comm.alltoall([comm.rank * 10 + d for d in range(comm.size)])
            part = comm.scan(comm.rank)
            return total, ranks, inbox, part

        results = run_spmd(4, prog, backend="process", op_timeout=30.0)
        for rank, (total, ranks, inbox, part) in enumerate(results):
            assert total == 6
            assert ranks == [0, 1, 2, 3]
            assert inbox == [s * 10 + rank for s in range(4)]
            assert part == sum(range(rank + 1))

    def test_numpy_allreduce_and_bcast(self):
        def prog(comm):
            acc = np.full(8, float(comm.rank))
            out = np.empty_like(acc)
            comm.Allreduce(acc, out)
            cb = np.arange(6.0) if comm.rank == 0 else np.zeros(6)
            comm.Bcast(cb, root=0)
            return out.tolist(), cb.tolist()

        results = run_spmd(3, prog, backend="process", op_timeout=30.0)
        for out, cb in results:
            assert out == [3.0] * 8
            assert cb == list(range(6))

    def test_split_contexts_are_isolated(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            total = sub.allreduce(comm.rank)
            return total, sub.size

        results = run_spmd(4, prog, backend="process", op_timeout=30.0)
        assert results == [(2, 2), (4, 2), (2, 2), (4, 2)]


class TestSharedMemoryPath:
    def test_large_array_round_trips_through_shm(self):
        n = SHM_MIN_BYTES  # float64 -> 8x the threshold, firmly on the shm path
        before = _shm_blocks()

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(n, dtype=np.float64), dest=1)
                return None
            got = comm.recv(source=0)
            return float(got.sum()), got.dtype.str, not got.flags.writeable

        results = run_spmd(2, prog, backend="process", op_timeout=30.0)
        assert results[1] == (float(n * (n - 1) / 2), "<f8", True)
        # Neither per-message blocks nor arena rings may outlive the job.
        assert _shm_blocks() == before

    def test_tuple_of_arrays_round_trips(self):
        before = _shm_blocks()

        def prog(comm):
            if comm.rank == 0:
                page = (np.arange(10_000, dtype=np.int64),
                        np.linspace(0.0, 1.0, 10_000))
                comm.send(page, dest=1)
                return None
            keys, vals = comm.recv(source=0)
            return int(keys[-1]), float(vals[-1])

        results = run_spmd(2, prog, backend="process", op_timeout=30.0)
        assert results[1] == (9999, 1.0)
        assert _shm_blocks() == before

    def test_small_and_object_payloads_take_the_pipe(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(4), dest=1)          # tiny: pickled
                comm.send({"k": [1, 2, 3]}, dest=1)      # object path
                return None
            a = comm.recv(source=0)
            d = comm.recv(source=0)
            return a.tolist(), d

        results = run_spmd(2, prog, backend="process", op_timeout=30.0)
        assert results[1] == ([0, 1, 2, 3], {"k": [1, 2, 3]})

    def test_no_blocks_leak_after_a_run(self):
        before = _shm_blocks()

        def prog(comm):
            big = np.full(SHM_MIN_BYTES, comm.rank, dtype=np.float64)
            gathered = comm.gather(big, root=0)
            if comm.rank == 0:
                return float(gathered[comm.size - 1][0])
            return None

        results = run_spmd(3, prog, backend="process", op_timeout=30.0)
        assert results[0] == 2.0
        assert _shm_blocks() == before

    def test_codec_round_trip_in_process(self):
        arr = np.arange(SHM_MIN_BYTES, dtype=np.float64)
        wire = encode_payload(arr, "reprompi_test_", 1)
        assert isinstance(wire, ShmHandle)
        back = decode_payload(wire)
        np.testing.assert_array_equal(back, arr)
        assert not back.flags.writeable
        assert "reprompi_test_1" not in _shm_blocks("reprompi_test_")
        # Ineligible payloads pass through untouched.
        assert encode_payload([1, 2], "reprompi_test_", 2) == [1, 2]
        assert sweep_job_blocks("reprompi_test_") == 0


class TestErrorPropagation:
    def test_unpicklable_exception_is_sanitized(self):
        class Local(RuntimeError):
            """Defined in a function scope: unpicklable by construction."""

        def prog(comm):
            if comm.rank == 1:
                raise Local("cannot cross the pipe as-is")
            return comm.allreduce(comm.rank)

        job = SpmdJob(2, prog, op_timeout=30.0, backend="process")
        with pytest.raises(MPIError, match="Local: cannot cross the pipe"):
            job.run(join_timeout=15.0)
        assert isinstance(job.errors[0], (AbortError, type(None)))

    def test_results_must_be_picklable(self):
        def prog(comm):
            return lambda: comm.rank  # closures cannot cross the pipe

        with pytest.raises(MPIError):
            run_spmd(2, prog, backend="process", op_timeout=30.0)


class TestTelemetry:
    def test_per_rank_traces_merge_into_session(self):
        trace = TraceSession(3)

        def prog(comm):
            comm.allreduce(comm.rank)
            comm.barrier()
            return comm.rank

        run_spmd(3, prog, backend="process", op_timeout=30.0, trace=trace)
        for rank in range(3):
            events = trace.tracers[rank].events
            assert events, f"rank {rank} shipped no events"
            names = [e[3] for e in events]
            assert "rank" in names  # lifecycle span
            begins = sum(1 for e in events if e[0] == "B")
            ends = sum(1 for e in events if e[0] == "E")
            assert begins == ends, f"rank {rank} trace unbalanced"

    def test_op_counts_visible_to_parent(self):
        job = SpmdJob(2, lambda comm: comm.allreduce(1), op_timeout=30.0,
                      backend="process")
        job.run(join_timeout=15.0)
        assert all(job.network.op_count(r) > 0 for r in range(2))


class TestBackendSelection:
    def test_resolve_backend_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_MPI_BACKEND", raising=False)
        assert resolve_backend(None) == "thread"
        monkeypatch.setenv("REPRO_MPI_BACKEND", "process")
        assert resolve_backend(None) == "process"
        assert resolve_backend("thread") == "thread"  # explicit wins

    def test_resolve_backend_rejects_unknown(self):
        with pytest.raises(MPIError):
            resolve_backend("smoke-signals")

    def test_backends_constant(self):
        assert BACKENDS == ("thread", "process")
