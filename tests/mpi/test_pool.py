"""The MPIPool task farm."""

import threading

import pytest

from repro.mpi import run_spmd
from repro.mpi.pool import MPIPool


def _with_pool(nprocs, body):
    """Run `body(pool)` on rank 0 inside a pool; workers serve."""

    def main(comm):
        with MPIPool(comm) as pool:
            if pool is not None:
                return body(pool)
            return "served"

    return run_spmd(nprocs, main)


class TestMap:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_squares_in_order(self, nprocs):
        results = _with_pool(nprocs, lambda pool: pool.map(lambda x: x * x, range(25)))
        assert results[0] == [x * x for x in range(25)]
        assert all(r == "served" for r in results[1:])

    def test_multiple_iterables(self):
        results = _with_pool(
            3, lambda pool: pool.map(lambda a, b: a + b, [1, 2, 3], [10, 20, 30])
        )
        assert results[0] == [11, 22, 33]

    def test_starmap(self):
        results = _with_pool(
            3, lambda pool: pool.starmap(lambda a, b: a * b, [(2, 3), (4, 5)])
        )
        assert results[0] == [6, 20]

    def test_empty_input(self):
        assert _with_pool(2, lambda pool: pool.map(len, []))[0] == []
        assert _with_pool(2, lambda pool: pool.starmap(len, []))[0] == []

    def test_work_actually_distributed(self):
        seen = set()
        lock = threading.Lock()

        def record(x):
            with lock:
                seen.add(threading.current_thread().name)
            return x

        _with_pool(4, lambda pool: pool.map(record, range(60)))
        assert len(seen) >= 2  # multiple worker ranks participated

    def test_consecutive_maps_reuse_pool(self):
        def body(pool):
            first = pool.map(lambda x: x + 1, range(5))
            second = pool.map(lambda x: x * 2, range(5))
            return (first, second)

        first, second = _with_pool(3, body)[0]
        assert first == [1, 2, 3, 4, 5]
        assert second == [0, 2, 4, 6, 8]


class TestErrors:
    def test_worker_exception_propagates(self):
        def explode(x):
            if x == 7:
                raise ValueError("bad item 7")
            return x

        def main(comm):
            with MPIPool(comm) as pool:
                if pool is not None:
                    with pytest.raises(ValueError, match="bad item 7"):
                        pool.map(explode, range(20))
                    return True
                return True

        assert all(run_spmd(3, main))

    def test_map_requires_context(self):
        def main(comm):
            pool = MPIPool(comm)
            if comm.rank == 0:
                with pytest.raises(RuntimeError, match="context manager"):
                    pool.map(len, ["ab"])
            # Enter properly so workers are released.
            with pool as p:
                if p is not None:
                    return p.map(len, ["abc"])
                return None

        assert run_spmd(2, main)[0] == [3]

    def test_map_after_shutdown_rejected(self):
        def main(comm):
            with MPIPool(comm) as pool:
                if pool is not None:
                    pool.shutdown()
                    with pytest.raises(RuntimeError, match="shut down"):
                        pool.map(len, ["x"])
                    return True
                return True

        assert all(run_spmd(2, main))
