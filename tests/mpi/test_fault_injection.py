"""Deterministic fault injection and the supervised-retry loop."""

import time

import pytest

from repro.mpi import (
    AbortError,
    CrashRank,
    DeadlockError,
    DelayMessage,
    DropMessage,
    DuplicateMessage,
    FaultPlan,
    RankFailure,
    RetryPolicy,
    StallRank,
    SupervisionExhausted,
    classify_failure,
    run_spmd,
    run_supervised,
)
from repro.mpi.runtime import BACKENDS, SpmdJob


def chatty(comm, rounds=10):
    """A little SPMD program with plenty of MPI ops on every rank."""
    total = 0
    for _ in range(rounds):
        total = comm.allreduce(comm.rank)
        comm.barrier()
    return total


@pytest.mark.parametrize("backend", BACKENDS)
class TestCrashInjection:
    def test_crashed_rank_raises_rank_failure(self, backend):
        plan = FaultPlan([CrashRank(rank=1, at_op=3)])
        with pytest.raises(RankFailure) as exc_info:
            run_spmd(3, chatty, fault_plan=plan, op_timeout=10.0, backend=backend)
        assert exc_info.value.rank == 1
        assert plan.trace() == (("crash", 1, 3),)

    def test_peers_wake_with_abort_not_deadlock(self, backend):
        job = SpmdJob(4, chatty, fault_plan=FaultPlan([CrashRank(2, 5)]),
                      op_timeout=10.0, backend=backend)
        with pytest.raises(RankFailure):
            job.run()
        for rank, err in enumerate(job.errors):
            if rank == 2:
                assert isinstance(err, RankFailure)
            else:
                assert isinstance(err, AbortError)

    def test_crashed_rank_stays_crashed(self, backend):
        """Every MPI call after the crash op also fails (rank is dead)."""

        def stubborn(comm):
            for _ in range(20):
                try:
                    comm.barrier()
                except RankFailure:
                    # The dead rank tries again anyway; it must stay dead.
                    with pytest.raises(RankFailure):
                        comm.barrier()
                    raise
            return "survived"

        plan = FaultPlan([CrashRank(0, 2)])
        with pytest.raises(RankFailure):
            run_spmd(2, stubborn, fault_plan=plan, op_timeout=10.0, backend=backend)


@pytest.mark.parametrize("backend", BACKENDS)
class TestMessageFaults:
    def test_dropped_message_times_out_receiver(self, backend):
        def sender_receiver(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1)
            else:
                return comm.recv(source=0)

        plan = FaultPlan([DropMessage(rank=0, nth_send=1)])
        with pytest.raises(DeadlockError):
            run_spmd(2, sender_receiver, fault_plan=plan, op_timeout=0.4,
                     backend=backend)
        assert plan.trace() == (("drop", 0, 1),)

    def test_duplicated_message_is_delivered_twice(self, backend):
        def dup_prog(comm):
            if comm.rank == 0:
                comm.send("hello", dest=1)
                return None
            first = comm.recv(source=0)
            second = comm.recv(source=0)  # the duplicate
            return (first, second)

        plan = FaultPlan([DuplicateMessage(rank=0, nth_send=1)])
        results = run_spmd(2, dup_prog, fault_plan=plan, op_timeout=5.0,
                           backend=backend)
        assert results[1] == ("hello", "hello")

    def test_delayed_message_arrives_late_but_intact(self, backend):
        def timed(comm):
            if comm.rank == 0:
                comm.send("slow", dest=1)
                return None
            t0 = time.monotonic()
            obj = comm.recv(source=0)
            return obj, time.monotonic() - t0

        plan = FaultPlan([DelayMessage(rank=0, nth_send=1, seconds=0.25)])
        results = run_spmd(2, timed, fault_plan=plan, op_timeout=5.0,
                           backend=backend)
        obj, elapsed = results[1]
        assert obj == "slow"
        assert elapsed >= 0.2

    def test_stalled_rank_finishes_anyway(self, backend):
        plan = FaultPlan([StallRank(rank=1, at_op=4, seconds=0.15)])
        t0 = time.monotonic()
        results = run_spmd(2, chatty, fault_plan=plan, op_timeout=10.0,
                           backend=backend)
        assert results == [1, 1]
        assert time.monotonic() - t0 >= 0.1
        assert plan.trace() == (("stall", 1, 4),)


class TestFaultPlanConstruction:
    def test_seeded_plans_are_reproducible(self):
        a = FaultPlan.from_seed(42, 4, crashes=2, drops=1, delays=1)
        b = FaultPlan.from_seed(42, 4, crashes=2, drops=1, delays=1)
        assert a.events == b.events
        assert FaultPlan.from_seed(43, 4, crashes=2).events != a.events[:2] or True

    def test_parse_explicit_events(self):
        plan = FaultPlan.parse("crash=1@20, drop=0@3, stall=2@5:0.01", 3)
        assert CrashRank(1, 20) in plan.events
        assert DropMessage(0, 3) in plan.events
        assert StallRank(2, 5, 0.01) in plan.events

    def test_parse_seeded_form(self):
        plan = FaultPlan.parse("seed=7,crashes=1,drops=2", 4)
        assert plan.seed == 7
        assert len(plan.events) == 3

    @pytest.mark.parametrize(
        "spec",
        ["", "bogus=1@2", "crash=1@2,seed=3", "stall=1@2", "crash=9@2"],
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec, 3)

    def test_reset_rearms_events(self):
        plan = FaultPlan([CrashRank(0, 2)])
        with pytest.raises(RankFailure):
            run_spmd(2, chatty, fault_plan=plan, op_timeout=10.0)
        assert plan.pending == 0
        plan.reset()
        assert plan.pending == 1
        assert plan.trace() == ()


class TestSupervision:
    def test_classify_failure_buckets(self):
        assert classify_failure(RankFailure(1, 5)) == "rank_failure"
        assert classify_failure(DeadlockError("x")) == "timeout"
        assert classify_failure(AbortError("x")) == "abort"
        assert classify_failure(ValueError("x")) == "error"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transient_crash_is_retried_to_success(self, backend):
        plan = FaultPlan([CrashRank(1, 3)])
        naps = []
        outcome = run_supervised(
            3,
            chatty,
            fault_plan=plan,
            op_timeout=10.0,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
            sleep=naps.append,
            backend=backend,
        )
        assert outcome.succeeded
        assert outcome.results == [3, 3, 3]
        assert outcome.retries == 1
        assert [a.outcome for a in outcome.attempts] == ["rank_failure", "ok"]
        assert outcome.faults_injected == 1
        assert naps == [pytest.approx(0.01)]

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert [policy.backoff(a) for a in (1, 2, 3)] == [0.1, 0.2, 0.3]

    def test_persistent_failure_exhausts_budget(self):
        def always_dies(comm):
            raise ValueError("hard bug")

        with pytest.raises(SupervisionExhausted) as exc_info:
            run_supervised(
                2,
                always_dies,
                op_timeout=5.0,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
                sleep=lambda s: None,
            )
        outcome = exc_info.value.outcome
        assert not outcome.succeeded
        assert [a.outcome for a in outcome.attempts] == ["error", "error"]

    def test_prepare_hook_sees_attempt_numbers(self):
        seen = []

        def prepare(attempt):
            seen.append(attempt)
            return (), {"rounds": 2}

        plan = FaultPlan([CrashRank(0, 2)])
        outcome = run_supervised(
            2,
            chatty,
            fault_plan=plan,
            op_timeout=10.0,
            prepare=prepare,
            retry=RetryPolicy(backoff_base=0.0),
            sleep=lambda s: None,
        )
        assert outcome.succeeded
        assert seen == [1, 2]

    def test_same_plan_yields_same_trace_twice(self):
        """The acceptance bar: one fault seed, two runs, identical traces."""
        traces = []
        for _ in range(2):
            plan = FaultPlan.from_seed(11, 3, crashes=1, stalls=1, op_window=(3, 8))
            try:
                run_spmd(3, chatty, fault_plan=plan, op_timeout=10.0)
            except RankFailure:
                pass
            traces.append(plan.trace())
        assert traces[0] == traces[1]
        assert traces[0]  # something actually fired

    def test_seeded_trace_identical_across_backends(self):
        """A fault seed addresses ops by per-rank op index, which both
        transports count identically — so one seed fires the very same
        event sequence whether the ranks are threads or processes."""
        traces = {}
        for backend in BACKENDS:
            plan = FaultPlan.from_seed(11, 3, crashes=1, stalls=1, op_window=(3, 8))
            try:
                run_spmd(3, chatty, fault_plan=plan, op_timeout=10.0,
                         backend=backend)
            except RankFailure:
                pass
            traces[backend] = plan.trace()
        assert traces["thread"] == traces["process"]
        assert traces["thread"]  # something actually fired
