"""The buffer-protocol fast path: numpy payloads move without deep copies.

``Comm.gather``/``allgather``/``alltoall`` used to ``_isolate`` (deep-copy)
every payload.  For ndarray payloads both transports now ship a frozen
read-only *view*: on the thread backend the receiver aliases the sender's
buffer outright (zero copies), and on the process backend the array crosses
shared memory exactly once.  The aliasing contract in exchange: received
arrays are read-only, and a sender must not mutate a buffer while an op is
in flight — same rules as MPI buffer semantics.
"""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.mpi.comm import _isolate, _wire
from repro.mpi.runtime import BACKENDS


class TestWireUnit:
    def test_ndarray_becomes_frozen_view(self):
        a = np.arange(16.0)
        w = _wire(a)
        assert np.shares_memory(a, w)
        assert not w.flags.writeable
        assert a.flags.writeable  # the original is untouched

    def test_tuple_of_ndarrays_freezes_each(self):
        t = (np.arange(4), np.zeros(3))
        w = _wire(t)
        assert all(np.shares_memory(a, b) for a, b in zip(t, w))
        assert all(not b.flags.writeable for b in w)

    def test_other_payloads_still_deep_copy(self):
        obj = {"nested": [1, 2]}
        w = _wire(obj)
        assert w == obj and w is not obj
        assert w["nested"] is not obj["nested"]
        mixed = (np.arange(3), "not an array")
        assert _wire(mixed) is not mixed  # falls back to _isolate

    def test_isolate_still_copies_arrays(self):
        a = np.arange(8)
        assert not np.shares_memory(a, _isolate(a))


class TestGatherNoCopy:
    def test_thread_gather_aliases_sender_buffers(self):
        """The pin: on the thread transport a gathered ndarray IS the
        sender's buffer (a frozen view), not a copy."""
        originals = [None] * 3

        def prog(comm):
            mine = np.full(64, float(comm.rank))
            originals[comm.rank] = mine
            gathered = comm.gather(mine, root=0)
            comm.barrier()  # keep senders alive until root has checked nothing
            return gathered

        results = run_spmd(3, prog, backend="thread", op_timeout=30.0)
        gathered = results[0]
        for rank, arr in enumerate(gathered):
            assert np.shares_memory(arr, originals[rank]), \
                f"rank {rank} contribution was deep-copied"
            assert not arr.flags.writeable

    def test_thread_allgather_aliases_sender_buffers(self):
        originals = [None] * 3

        def prog(comm):
            mine = np.arange(32.0) + comm.rank
            originals[comm.rank] = mine
            return comm.allgather(mine)

        results = run_spmd(3, prog, backend="thread", op_timeout=30.0)
        for got in results:
            for rank, arr in enumerate(got):
                assert np.shares_memory(arr, originals[rank])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_received_arrays_read_only_on_both_backends(self, backend):
        def prog(comm):
            gathered = comm.allgather(np.full(32, float(comm.rank)))
            return [bool(a.flags.writeable) for a in gathered]

        results = run_spmd(2, prog, backend=backend, op_timeout=30.0)
        for rank, flags in enumerate(results):
            # Every array that crossed the transport is frozen; a rank's own
            # contribution comes back as a frozen view too.
            assert flags == [False, False], f"rank {rank} got writable arrays"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gather_values_identical_across_backends(self, backend):
        def prog(comm):
            gathered = comm.gather(np.arange(8.0) * comm.rank, root=1)
            if comm.rank == 1:
                return np.concatenate(gathered).tolist()
            return None

        results = run_spmd(3, prog, backend=backend, op_timeout=30.0)
        want = np.concatenate([np.arange(8.0) * r for r in range(3)]).tolist()
        assert results[1] == want
