"""Runtime and network edge cases: aborts, requests, contexts, misc."""

import numpy as np
import pytest

from repro.mpi import AbortError, Comm, MPIError, Network, run_spmd
from repro.mpi.network import Message
from repro.mpi.runtime import SpmdJob


class TestNetwork:
    def test_post_to_invalid_rank(self):
        net = Network(2)
        with pytest.raises(MPIError, match="invalid destination"):
            net.post(Message(src=0, dst=5, tag=0, context=0, payload=None))

    def test_post_after_abort_raises(self):
        net = Network(2)
        net.abort(RuntimeError("x"))
        with pytest.raises(AbortError):
            net.post(Message(src=0, dst=1, tag=0, context=0, payload=None))

    def test_nonblocking_match_returns_none(self):
        net = Network(1)
        assert net.match(0, context=0, block=False) is None

    def test_context_allocation_stable(self):
        net = Network(2)
        a = net.allocate_context(("split", 0, 1, (0, 1)))
        b = net.allocate_context(("split", 0, 1, (0, 1)))
        c = net.allocate_context(("split", 0, 2, (0, 1)))
        assert a == b != c

    def test_invalid_nprocs(self):
        with pytest.raises(MPIError):
            Network(0)


class TestCommEdges:
    def test_comm_rank_bounds(self):
        net = Network(2)
        with pytest.raises(MPIError):
            Comm(net, 5, [0, 1])

    def test_sizes_and_accessors(self):
        def main(comm):
            return (comm.Get_rank(), comm.Get_size(), comm.rank, comm.size)

        results = run_spmd(3, main)
        assert results == [(r, 3, r, 3) for r in range(3)]

    def test_request_wait_idempotent(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                return None
            req = comm.irecv(source=0)
            first = req.wait()
            second = req.wait()  # completed request: returns cached value
            flag, third = req.test()
            return (first, second, flag, third)

        assert run_spmd(2, main)[1] == ("x", "x", True, "x")

    def test_send_to_self(self):
        def main(comm):
            comm.send("loop", dest=comm.rank, tag=3)
            return comm.recv(source=comm.rank, tag=3)

        assert run_spmd(2, main) == ["loop", "loop"]

    def test_reduce_on_single_rank(self):
        def main(comm):
            return (comm.reduce(41), comm.allreduce(41), comm.bcast(41))

        assert run_spmd(1, main) == [(41, 41, 41)]

    def test_split_of_split(self):
        def main(comm):
            half = comm.split(comm.rank // 2)  # {0,1}, {2,3}
            quarter = half.split(half.rank % 2)  # singletons
            return (half.size, quarter.size, quarter.allreduce(comm.rank))

        results = run_spmd(4, main)
        assert [r[0] for r in results] == [2, 2, 2, 2]
        assert [r[1] for r in results] == [1, 1, 1, 1]
        assert [r[2] for r in results] == [0, 1, 2, 3]

    def test_repeated_dup_contexts_isolated(self):
        def main(comm):
            d1 = comm.dup()
            d2 = comm.dup()
            if comm.rank == 0:
                d2.send("second", dest=1, tag=0)
                d1.send("first", dest=1, tag=0)
                return None
            # Receiving on d1 must not pick up d2's message.
            return (d1.recv(source=0, tag=0), d2.recv(source=0, tag=0))

        assert run_spmd(2, main)[1] == ("first", "second")

    def test_numpy_scalar_reduction_types(self):
        def main(comm):
            v = np.float32(comm.rank)
            total = comm.allreduce(v)
            return float(total)

        assert run_spmd(4, main) == [6.0] * 4


class TestSpmdJob:
    def test_per_rank_args_via_closure(self):
        def main(comm, base, scale=1):
            return base + comm.rank * scale

        results = run_spmd(3, main, 100, scale=10)
        assert results == [100, 110, 120]

    def test_job_handle_runs_once(self):
        job = SpmdJob(2, lambda comm: comm.rank)
        assert job.run() == [0, 1]

    def test_zero_ranks_rejected(self):
        with pytest.raises(MPIError):
            SpmdJob(0, lambda comm: None)

    def test_error_in_every_rank_reports_first_real_error(self):
        def main(comm):
            raise KeyError(f"rank{comm.rank}")

        with pytest.raises(KeyError):
            run_spmd(3, main)
