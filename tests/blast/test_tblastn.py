"""tblastn: protein query vs translated nucleotide database."""

import pytest

from repro.bio import SeqRecord, random_genome, random_protein
from repro.bio.seq import CODON_TABLE, reverse_complement
from repro.blast import BlastOptions, DatabaseAlias, format_database
from repro.blast.tblastn import TblastnEngine, TranslatedPartition


def back_translate(protein: str) -> str:
    by_aa: dict[str, str] = {}
    for codon, aa in sorted(CODON_TABLE.items()):
        by_aa.setdefault(aa, codon)
    return "".join(by_aa[a] for a in protein)


@pytest.fixture(scope="module")
def dna_db(tmp_path_factory):
    """Contigs embedding known protein-coding regions."""
    tmp = tmp_path_factory.mktemp("tblastn")
    proteins = [random_protein(120, seed_or_rng=i) for i in range(3)]
    contigs = [
        # gene on the plus strand at nt offset 30 (frame +1: 30 % 3 == 0)
        SeqRecord("contigA", random_genome(30, seed_or_rng=1)
                  + back_translate(proteins[0]) + random_genome(40, seed_or_rng=2)),
        # gene on the minus strand
        SeqRecord("contigB", reverse_complement(
            random_genome(21, seed_or_rng=3) + back_translate(proteins[1])
            + random_genome(33, seed_or_rng=4))),
        SeqRecord("decoy", random_genome(400, seed_or_rng=5)),
    ]
    alias = format_database(contigs, tmp, "contigs", kind="dna")
    return str(alias), proteins, contigs


class TestTranslatedPartition:
    def test_frames_and_stats(self, dna_db):
        alias_path, _, contigs = dna_db
        part = DatabaseAlias.load(alias_path).open_partition(0)
        tr = TranslatedPartition(part)
        virtual = list(tr)
        assert all("|frame" in vid for vid, _ in virtual)
        assert tr.num_seqs == 3
        assert tr.total_length == sum(len(c.seq) for c in contigs) // 3
        assert tr.nt_lengths["contigA"] == len(contigs[0].seq)

    def test_protein_partition_rejected(self, tmp_path):
        from repro.bio import synthetic_protein_database

        _, db = synthetic_protein_database(n_families=1, members_per_family=1, length=40)
        alias = format_database(db, tmp_path, "p", kind="protein")
        part = DatabaseAlias.load(alias).open_partition(0)
        with pytest.raises(ValueError, match="nucleotide"):
            TranslatedPartition(part)


class TestTblastnSearch:
    def _engine(self, **kw):
        return TblastnEngine(BlastOptions.blastp(evalue=1e-8, **kw))

    def test_plus_strand_gene_located(self, dna_db):
        alias_path, proteins, _ = dna_db
        part = DatabaseAlias.load(alias_path).open_partition(0)
        hits = self._engine().search_block([SeqRecord("q0", proteins[0])], part)
        assert hits
        best = hits[0]
        assert best.subject_id == "contigA"
        assert best.strand == 1 and best.frame > 0
        # nt coordinates of the embedded gene: offset 30, length 360.
        assert best.s_start == 30
        assert best.s_end == 30 + 3 * 120
        assert best.pident == 100.0

    def test_minus_strand_gene_located(self, dna_db):
        alias_path, proteins, contigs = dna_db
        part = DatabaseAlias.load(alias_path).open_partition(0)
        hits = self._engine().search_block([SeqRecord("q1", proteins[1])], part)
        assert hits
        best = hits[0]
        assert best.subject_id == "contigB"
        assert best.strand == -1 and best.frame < 0
        L = len(contigs[1].seq)
        # The gene occupies nt [33, 33+360) on the forward strand of contigB
        # (reverse complement pushed the 33-base tail to the front).
        assert best.s_start == 33
        assert best.s_end == 33 + 3 * 120
        assert 0 <= best.s_start < best.s_end <= L

    def test_no_hits_in_decoy_only(self, dna_db):
        alias_path, _, _ = dna_db
        part = DatabaseAlias.load(alias_path).open_partition(0)
        hits = self._engine().search_block(
            [SeqRecord("qx", random_protein(120, seed_or_rng=50))], part
        )
        assert hits == []

    def test_db_split_override_converted_to_aa(self, dna_db):
        alias_path, proteins, _ = dna_db
        alias = DatabaseAlias.load(alias_path)
        opts = BlastOptions.blastp(evalue=1e-4).with_db_size(
            alias.total_length, alias.num_seqs
        )
        engine = TblastnEngine(opts)
        assert engine._inner.options.db_length_override == alias.total_length // 3
        hits = engine.search_block([SeqRecord("q0", proteins[0])], alias.open_partition(0))
        assert hits and hits[0].subject_id == "contigA"

    def test_requires_protein_scoring(self):
        with pytest.raises(ValueError, match="blastp-style"):
            TblastnEngine(BlastOptions.blastn())
