"""Pairwise alignment rendering and the ops-string machinery behind it."""

import pytest

from repro.bio import SeqRecord, mutate_dna, random_genome, random_protein
from repro.bio.alphabet import DNA
from repro.bio.seq import reverse_complement
from repro.blast import BlastOptions, DatabaseAlias, format_database, make_engine
from repro.blast.gapped import extend_gapped
from repro.blast.matrices import nucleotide_matrix
from repro.blast.pairwise import align_ranges, render_pairwise

NT = nucleotide_matrix(1, -2)


class TestOpsString:
    def test_perfect_match_all_m(self):
        q = DNA.encode(random_genome(50, seed_or_rng=1))
        g = extend_gapped(q, q, 25, 25, NT, 5, 2, xdrop=30, band=16)
        assert g.ops == "M" * 50

    def test_insertion_appears_as_d_run(self):
        left = random_genome(40, seed_or_rng=2)
        right = random_genome(40, seed_or_rng=3)
        q = DNA.encode(left + right)
        s = DNA.encode(left + "ACGTA" + right)
        g = extend_gapped(q, s, 5, 5, NT, 5, 2, xdrop=40, band=32)
        assert g.ops.count("D") == 5
        assert "D" * 5 in g.ops
        assert g.ops.count("M") == 80

    def test_ops_consume_exactly_the_spans(self):
        base = random_genome(150, seed_or_rng=4)
        q = DNA.encode(base)
        s = DNA.encode(mutate_dna(base, 0.08, seed_or_rng=5))
        g = extend_gapped(q, s, 60, 60, NT, 5, 2, xdrop=40, band=48)
        q_consumed = g.ops.count("M") + g.ops.count("I")
        s_consumed = g.ops.count("M") + g.ops.count("D")
        assert q_consumed == g.q_end - g.q_start
        assert s_consumed == g.s_end - g.s_start
        assert len(g.ops) == g.align_len


class TestAlignRanges:
    def test_recovers_full_range_alignment(self):
        base = random_genome(120, seed_or_rng=6)
        q = DNA.encode(base)
        s = DNA.encode(mutate_dna(base, 0.05, seed_or_rng=7))
        g = align_ranges(q, s, NT, 5, 2)
        assert g is not None
        assert g.q_start == 0 and g.s_start == 0
        assert g.q_end >= 110  # covers essentially the whole range


class TestRenderPairwise:
    @pytest.fixture(scope="class")
    def nt_hit(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("pw")
        genome = random_genome(1200, seed_or_rng=8)
        subj = mutate_dna(genome, 0.05, seed_or_rng=9)
        alias = DatabaseAlias.load(
            format_database([SeqRecord("subj", subj)], tmp, "pw", kind="dna")
        )
        query = SeqRecord("q", genome[200:500])
        opts = BlastOptions.blastn(evalue=1e-6)
        hits = make_engine(opts).search_block([query], alias.open_partition(0))
        return hits[0], query.seq, subj, opts

    def test_layout_and_statistics_line(self, nt_hit):
        hsp, qseq, sseq, opts = nt_hit
        text = render_pairwise(hsp, qseq, sseq, opts, width=60)
        assert f"Identities = {hsp.identities}/{hsp.align_len}" in text
        assert "Strand = Plus/Plus" in text
        lines = text.splitlines()
        q_lines = [l for l in lines if l.startswith("Query")]
        s_lines = [l for l in lines if l.startswith("Sbjct")]
        assert len(q_lines) == len(s_lines) >= 2

    def test_rendered_residues_match_sources(self, nt_hit):
        hsp, qseq, sseq, opts = nt_hit
        text = render_pairwise(hsp, qseq, sseq, opts, width=50)
        q_res = "".join(
            l.split()[2] for l in text.splitlines() if l.startswith("Query")
        ).replace("-", "")
        s_res = "".join(
            l.split()[2] for l in text.splitlines() if l.startswith("Sbjct")
        ).replace("-", "")
        assert q_res == qseq[hsp.q_start : hsp.q_end]
        assert s_res == sseq[hsp.s_start : hsp.s_end]

    def test_coordinates_are_one_based_and_contiguous(self, nt_hit):
        hsp, qseq, sseq, opts = nt_hit
        text = render_pairwise(hsp, qseq, sseq, opts, width=40)
        q_lines = [l.split() for l in text.splitlines() if l.startswith("Query")]
        assert int(q_lines[0][1]) == hsp.q_start + 1
        assert int(q_lines[-1][3]) == hsp.q_end
        for (_a, _s1, _seq, end), (_b, start, _seq2, _end2) in zip(q_lines, q_lines[1:]):
            assert int(start) == int(end) + 1

    def test_midline_marks_identities(self, nt_hit):
        hsp, qseq, sseq, opts = nt_hit
        text = render_pairwise(hsp, qseq, sseq, opts)
        pipes = text.count("|")
        assert pipes == hsp.identities

    def test_minus_strand_rendering(self, tmp_path):
        genome = random_genome(900, seed_or_rng=10)
        alias = DatabaseAlias.load(
            format_database([SeqRecord("fwd", genome)], tmp_path, "rc", kind="dna")
        )
        query = SeqRecord("rcq", reverse_complement(genome[300:600]))
        opts = BlastOptions.blastn(evalue=1e-10)
        hit = make_engine(opts).search_block([query], alias.open_partition(0))[0]
        text = render_pairwise(hit, query.seq, genome, opts)
        assert "Strand = Plus/Minus" in text
        q_lines = [l.split() for l in text.splitlines() if l.startswith("Query")]
        # Query coordinates descend on the minus strand.
        assert int(q_lines[0][1]) > int(q_lines[-1][3])

    def test_protein_midline_uses_plus_for_positives(self, tmp_path):
        prot = random_protein(150, seed_or_rng=11)
        alias = DatabaseAlias.load(
            format_database([SeqRecord("p", prot)], tmp_path, "pp", kind="protein")
        )
        # Mutate a few residues so positives (non-identical, score>0) appear.
        import numpy as np

        rng = np.random.default_rng(3)
        chars = list(prot)
        for i in range(0, len(chars), 9):
            chars[i] = "ARNDCQEGHILKMFPSTWYV"[rng.integers(0, 20)]
        query = SeqRecord("qp", "".join(chars))
        opts = BlastOptions.blastp(evalue=1e-6)
        hit = make_engine(opts).search_block([query], alias.open_partition(0))[0]
        text = render_pairwise(hit, query.seq, prot, opts)
        assert text.count("|") == hit.identities

    def test_translated_hsp_rejected(self, nt_hit):
        from dataclasses import replace

        hsp, qseq, sseq, opts = nt_hit
        fake = replace(hsp, frame=1, q_start=0, q_end=3 * hsp.align_len)
        with pytest.raises(ValueError, match="untranslated"):
            render_pairwise(fake, qseq, sseq, opts)

    def test_width_validation(self, nt_hit):
        hsp, qseq, sseq, opts = nt_hit
        with pytest.raises(ValueError):
            render_pairwise(hsp, qseq, sseq, opts, width=5)
