"""Karlin-Altschul parameters and E-value machinery vs NCBI's published values."""

import math

import numpy as np
import pytest

from repro.blast.karlin import (
    KarlinParams,
    gapped_params,
    karlin_params,
    score_distribution,
)
from repro.blast.matrices import BLOSUM62, background_frequencies, nucleotide_matrix
from repro.blast.statistics import (
    bit_score,
    effective_lengths,
    evalue,
    evalue_to_score,
    pvalue,
)


class TestLambdaKH:
    """Computed (λ, K, H) must match NCBI's published constants."""

    def test_blosum62_ungapped(self):
        p = karlin_params(program="blastp")
        assert p.lam == pytest.approx(0.3176, abs=0.001)
        assert p.K == pytest.approx(0.134, abs=0.002)
        assert p.H == pytest.approx(0.4012, abs=0.002)

    def test_blastn_1_minus2(self):
        p = karlin_params(program="blastn", reward=1, penalty=-2)
        assert p.lam == pytest.approx(1.33, abs=0.005)
        assert p.K == pytest.approx(0.621, abs=0.005)
        assert p.H == pytest.approx(1.12, abs=0.01)

    def test_blastn_1_minus3(self):
        p = karlin_params(program="blastn", reward=1, penalty=-3)
        assert p.lam == pytest.approx(1.374, abs=0.005)
        assert p.K == pytest.approx(0.711, abs=0.005)

    def test_blastn_1_minus1_exact(self):
        # For ±1 with P(+1)=1/4: lambda = ln 3 and K = 1/3 exactly.
        p = karlin_params(program="blastn", reward=1, penalty=-1)
        assert p.lam == pytest.approx(math.log(3.0), rel=1e-6)
        assert p.K == pytest.approx(1.0 / 3.0, rel=1e-4)

    def test_lambda_defining_equation_holds(self):
        p = karlin_params(program="blastn", reward=2, penalty=-3)
        low, probs = score_distribution(nucleotide_matrix(2, -3), background_frequencies("dna"))
        scores = np.arange(low, low + probs.size)
        assert (probs * np.exp(p.lam * scores)).sum() == pytest.approx(1.0, abs=1e-9)

    def test_positive_expected_score_rejected(self):
        # reward so high that expected score is positive -> no valid lambda
        with pytest.raises(ValueError, match="negative"):
            karlin_params(program="blastn", reward=7, penalty=-1)

    def test_unknown_program(self):
        with pytest.raises(ValueError):
            karlin_params(program="tblastx")


class TestGappedParams:
    def test_blosum62_11_1_table(self):
        p = gapped_params(program="blastp", gap_open=11, gap_extend=1)
        assert p.gapped
        assert p.lam == pytest.approx(0.267, abs=1e-3)
        assert p.K == pytest.approx(0.041, abs=1e-3)

    def test_blastn_falls_back_to_ungapped_values(self):
        g = gapped_params(program="blastn", reward=1, penalty=-2, gap_open=5, gap_extend=2)
        u = karlin_params(program="blastn", reward=1, penalty=-2)
        assert g.gapped and not u.gapped
        assert g.lam == u.lam and g.K == u.K

    def test_unusual_protein_costs_fall_back(self):
        g = gapped_params(program="blastp", gap_open=32, gap_extend=2)
        u = karlin_params(program="blastp")
        assert g.lam == u.lam


class TestScoreDistribution:
    def test_probabilities_sum_to_one(self):
        low, probs = score_distribution(BLOSUM62, background_frequencies("protein"))
        assert probs.sum() == pytest.approx(1.0, abs=1e-12)
        assert low == int(BLOSUM62[:20, :20].min())

    def test_dna_distribution(self):
        low, probs = score_distribution(nucleotide_matrix(1, -2), background_frequencies("dna"))
        assert low == -2
        assert probs[0] == pytest.approx(0.75)  # mismatch
        assert probs[-1] == pytest.approx(0.25)  # match


class TestEvalues:
    PARAMS = KarlinParams(lam=0.267, K=0.041, H=0.14, gapped=True)

    def test_bit_score_formula(self):
        bits = bit_score(100, self.PARAMS)
        assert bits == pytest.approx((0.267 * 100 - math.log(0.041)) / math.log(2))

    def test_evalue_decreases_exponentially_with_score(self):
        e1 = evalue(50, self.PARAMS, 300, 10**7, 1000)
        e2 = evalue(60, self.PARAMS, 300, 10**7, 1000)
        assert e2 < e1
        assert e1 / e2 == pytest.approx(math.exp(0.267 * 10), rel=1e-6)

    def test_evalue_scales_linearly_with_db_length(self):
        e_small = evalue(80, self.PARAMS, 300, 10**6, 1000)
        e_big = evalue(80, self.PARAMS, 300, 10**8, 1000)
        ratio = e_big / e_small
        # Not exactly 100x because the length adjustment differs, but close.
        assert 50 < ratio < 200

    def test_effective_lengths_positive_and_reduced(self):
        m_eff, n_eff = effective_lengths(self.PARAMS, 300, 10**7, 1000)
        assert 0 < m_eff < 300
        assert 0 < n_eff < 10**7

    def test_evalue_to_score_is_inverse(self):
        target = 1e-4
        s = evalue_to_score(target, self.PARAMS, 300, 10**7, 1000)
        assert evalue(s, self.PARAMS, 300, 10**7, 1000) <= target
        assert evalue(s - 1, self.PARAMS, 300, 10**7, 1000) > target

    def test_huge_score_underflows_to_zero_not_error(self):
        assert evalue(10**6, self.PARAMS, 300, 10**7, 1000) == 0.0

    def test_tiny_score_gives_huge_evalue(self):
        assert evalue(1, self.PARAMS, 300, 10**9, 10**6) > 1e3

    def test_pvalue(self):
        assert pvalue(0.0) == 0.0
        assert pvalue(1e-5) == pytest.approx(1e-5, rel=1e-3)
        assert pvalue(100.0) == 1.0
        with pytest.raises(ValueError):
            pvalue(-1.0)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            evalue(10, self.PARAMS, 0, 100, 10)
        with pytest.raises(ValueError):
            evalue_to_score(0.0, self.PARAMS, 300, 100, 10)


class TestMatrices:
    def test_blosum62_known_entries(self):
        from repro.bio.alphabet import PROTEIN

        def s(a, b):
            return BLOSUM62[PROTEIN.letters.index(a), PROTEIN.letters.index(b)]

        assert s("W", "W") == 11
        assert s("A", "A") == 4
        assert s("E", "E") == 5
        assert s("W", "C") == -2
        assert s("I", "L") == 2
        assert s("R", "K") == 2

    def test_nucleotide_matrix_structure(self):
        m = nucleotide_matrix(2, -3)
        assert (np.diag(m) == 2).all()
        off = m[~np.eye(4, dtype=bool)]
        assert (off == -3).all()

    def test_nucleotide_matrix_validation(self):
        with pytest.raises(ValueError):
            nucleotide_matrix(0, -2)
        with pytest.raises(ValueError):
            nucleotide_matrix(1, 2)

    def test_background_frequencies(self):
        assert background_frequencies("dna").sum() == pytest.approx(1.0)
        prot = background_frequencies("protein")
        assert prot.sum() == pytest.approx(1.0)
        assert prot[20:].sum() == 0.0  # ambiguity codes carry no weight
        with pytest.raises(ValueError):
            background_frequencies("rna")
