"""Tabular round-trip of translated (blastx) hits."""

import io

from repro.blast.hsp import HSP
from repro.blast.tabular import format_tabular, parse_tabular


def test_blastx_hit_roundtrips_through_tabular():
    original = HSP(
        query_id="read1",
        subject_id="prot",
        score=500,
        bit_score=198.2,
        evalue=3.1e-52,
        q_start=2,
        q_end=452,   # 450 nt
        s_start=10,
        s_end=160,   # 150 aa
        identities=120,
        align_len=150,
        gaps=0,
        strand=1,
        frame=2,
    )
    text = format_tabular([original])
    parsed = next(iter(parse_tabular(io.StringIO(text))))
    assert parsed.q_start == original.q_start
    assert parsed.q_end == original.q_end
    assert parsed.align_len == original.align_len
    assert parsed.frame != 0  # recognised as translated
    assert parsed.strand == 1


def test_minus_frame_blastx_roundtrip():
    original = HSP(
        query_id="read2",
        subject_id="prot",
        score=300,
        bit_score=120.0,
        evalue=1e-30,
        q_start=5,
        q_end=305,
        s_start=0,
        s_end=100,
        identities=90,
        align_len=100,
        strand=-1,
        frame=-3,
    )
    parsed = next(iter(parse_tabular(io.StringIO(format_tabular([original])))))
    assert parsed.strand == -1
    assert parsed.frame == -1  # exact frame unknowable from 12 columns


def test_untranslated_hit_keeps_frame_zero():
    plain = HSP("q", "s", 100, 50.0, 1e-9, 0, 100, 0, 100, 95, 100)
    parsed = next(iter(parse_tabular(io.StringIO(format_tabular([plain])))))
    assert parsed.frame == 0
