"""Deeper statistics/karlin coverage: length adjustment, distributions,
cutoff behaviour inside the engine."""

import math

import numpy as np
import pytest

from repro.bio import SeqRecord, random_genome
from repro.blast import BlastOptions, DatabaseAlias, format_database, make_engine
from repro.blast.karlin import KarlinParams, score_distribution
from repro.blast.matrices import BLOSUM62, background_frequencies
from repro.blast.statistics import effective_lengths, evalue, length_adjustment

B62_UNGAPPED = KarlinParams(lam=0.3176, K=0.134, H=0.4012)


class TestLengthAdjustment:
    def test_fixed_point_property(self):
        """At the solution, ℓ == ln(K·m_eff·n_eff)/H (the defining equation)."""
        ell = length_adjustment(B62_UNGAPPED, 300, 10**7, 10**4)
        m_eff = 300 - ell
        n_eff = 10**7 - 10**4 * ell
        rhs = math.log(B62_UNGAPPED.K * m_eff * n_eff) / B62_UNGAPPED.H
        assert ell == pytest.approx(rhs, abs=0.05)

    def test_monotone_in_db_size(self):
        ells = [
            length_adjustment(B62_UNGAPPED, 300, n, 1000)
            for n in (10**5, 10**6, 10**7, 10**8)
        ]
        assert ells == sorted(ells)
        assert ells[0] < ells[-1]

    def test_clamped_at_half_query(self):
        ell = length_adjustment(B62_UNGAPPED, 40, 10**9, 10)
        assert ell <= 20.0

    def test_zero_when_search_space_tiny(self):
        # K·m·n < 1 -> g(0) <= 0 -> no adjustment.
        params = KarlinParams(lam=1.0, K=1e-6, H=1.0)
        assert length_adjustment(params, 100, 1000, 10) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            length_adjustment(B62_UNGAPPED, 0, 100, 1)

    def test_effective_lengths_floats_consistent(self):
        m_eff, n_eff = effective_lengths(B62_UNGAPPED, 300, 10**7, 10**4)
        ell = length_adjustment(B62_UNGAPPED, 300, 10**7, 10**4)
        assert m_eff == pytest.approx(300 - ell)
        assert n_eff == pytest.approx(10**7 - 10**4 * ell)


class TestScoreDistributionEdges:
    def test_asymmetric_frequencies(self):
        """Query background != subject background (composition adjustment)."""
        prot = background_frequencies("protein")
        skewed = prot.copy()
        skewed[:5] *= 3.0
        skewed /= skewed.sum()
        low, probs = score_distribution(BLOSUM62, prot, skewed)
        assert probs.sum() == pytest.approx(1.0, abs=1e-12)
        low_sym, probs_sym = score_distribution(BLOSUM62, prot)
        assert low == low_sym
        assert not np.allclose(probs, probs_sym)

    def test_distribution_support_matches_matrix(self):
        low, probs = score_distribution(BLOSUM62, background_frequencies("protein"))
        scores = np.arange(low, low + probs.size)
        # W:W = 11 is attainable and must carry probability mass.
        assert probs[np.where(scores == 11)[0][0]] > 0


class TestEngineCutoffs:
    @pytest.fixture()
    def db(self, tmp_path):
        genome = random_genome(3000, seed_or_rng=70)
        alias = format_database([SeqRecord("ref", genome)], tmp_path, "cut", kind="dna")
        return DatabaseAlias.load(alias), genome

    def test_high_ungapped_cutoff_suppresses_gapped_stage(self, db):
        alias, genome = db
        query = [SeqRecord("q", genome[500:560])]  # short: modest scores
        permissive = make_engine(BlastOptions.blastn(evalue=10.0,
                                                     ungapped_cutoff_bits=12.0))
        strict = make_engine(BlastOptions.blastn(evalue=10.0,
                                                 ungapped_cutoff_bits=500.0))
        hits_perm = permissive.search_block(query, alias.open_partition(0))
        hits_strict = strict.search_block(query, alias.open_partition(0))
        assert hits_perm
        assert hits_strict == []
        assert strict.last_stats.n_gapped == 0
        assert permissive.last_stats.n_gapped > 0

    def test_evalue_identity_between_split_and_override(self, db):
        """E = K·m'·n'·e^{-λS} with the same (m', n') gives the same E —
        the arithmetic core of the DB-split invariance."""
        alias, _ = db
        part = alias.open_partition(0)
        params = KarlinParams(lam=0.625, K=0.41, H=0.78, gapped=True)
        e_direct = evalue(150, params, 400, part.total_length, part.num_seqs)
        e_again = evalue(150, params, 400, part.total_length, part.num_seqs)
        assert e_direct == e_again


class TestDbReaderEdges:
    def test_sequence_text_roundtrip_both_kinds(self, tmp_path):
        from repro.bio import random_protein

        g = random_genome(123, seed_or_rng=80)
        p = random_protein(77, seed_or_rng=81)
        alias_n = DatabaseAlias.load(
            format_database([SeqRecord("n", g)], tmp_path / "n", "n", kind="dna")
        )
        alias_p = DatabaseAlias.load(
            format_database([SeqRecord("p", p)], tmp_path / "p", "p", kind="protein")
        )
        assert alias_n.open_partition(0).sequence(0) == g
        assert alias_p.open_partition(0).sequence(0) == p

    def test_subject_index_bounds(self, tmp_path):
        alias = DatabaseAlias.load(format_database(
            [SeqRecord("x", random_genome(50, seed_or_rng=82))], tmp_path, "x", kind="dna"
        ))
        part = alias.open_partition(0)
        with pytest.raises(IndexError):
            part.codes(1)

    def test_bad_kind_rejected_by_writer(self, tmp_path):
        from repro.blast.formatdb import DatabaseWriter

        with pytest.raises(ValueError):
            DatabaseWriter(tmp_path, "bad", kind="rna")
        with pytest.raises(ValueError):
            DatabaseWriter(tmp_path, "bad", kind="dna", max_volume_bytes=10)
