"""HSP semantics, culling, top-K selection, tabular round-trips."""

import io

import pytest

from repro.blast.hsp import HSP, cull_overlapping, top_hits
from repro.blast.tabular import (
    format_tabular,
    format_tabular_line,
    parse_tabular,
    write_tabular,
)


def mk(qid="q", sid="s", score=100, bits=50.0, e=1e-10, qs=0, qe=100,
       ss=200, se=300, ident=95, alen=100, gaps=0, strand=1):
    return HSP(qid, sid, score, bits, e, qs, qe, ss, se, ident, alen, gaps, strand)


class TestHSP:
    def test_derived_properties(self):
        h = mk(ident=90, alen=100, gaps=4)
        assert h.pident == 90.0
        assert h.mismatches == 6
        assert h.q_span == 100 and h.s_span == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            mk(qs=10, qe=10)
        with pytest.raises(ValueError):
            mk(ss=300, se=200)
        with pytest.raises(ValueError):
            mk(strand=0)
        with pytest.raises(ValueError):
            mk(ident=200, alen=100)
        with pytest.raises(ValueError):
            mk(alen=10)  # shorter than spans

    def test_sort_key_orders_by_evalue_then_score(self):
        a = mk(e=1e-20, score=50)
        b = mk(e=1e-10, score=500)
        c = mk(e=1e-20, score=80)
        assert sorted([a, b, c], key=HSP.sort_key) == [c, a, b]

    def test_sort_key_fully_deterministic(self):
        a = mk(sid="s1")
        b = mk(sid="s2")
        assert sorted([b, a], key=HSP.sort_key) == sorted([a, b], key=HSP.sort_key)


class TestCulling:
    def test_contained_worse_hsp_removed(self):
        big = mk(score=200, bits=90.0, e=1e-30, qs=0, qe=100, ss=0, se=100, alen=100, ident=100)
        small = mk(score=50, bits=25.0, e=1e-5, qs=10, qe=60, ss=10, se=60, alen=50, ident=50)
        assert cull_overlapping([small, big]) == [big]

    def test_disjoint_hsps_kept(self):
        h1 = mk(qs=0, qe=50, ss=0, se=50, alen=50, ident=50)
        h2 = mk(qs=60, qe=110, ss=60, se=110, alen=50, ident=50, e=1e-8)
        assert len(cull_overlapping([h1, h2])) == 2

    def test_different_subjects_never_culled(self):
        h1 = mk(sid="s1")
        h2 = mk(sid="s2", e=1e-5)
        assert len(cull_overlapping([h1, h2])) == 2

    def test_different_queries_never_culled(self):
        h1 = mk(qid="q1")
        h2 = mk(qid="q2", e=1e-5)
        assert len(cull_overlapping([h1, h2])) == 2

    def test_different_strand_kept(self):
        h1 = mk(strand=1)
        h2 = mk(strand=-1, e=1e-5)
        assert len(cull_overlapping([h1, h2])) == 2

    def test_overlap_threshold_respected(self):
        a = mk(qs=0, qe=100, ss=0, se=100, alen=100, ident=100, e=1e-30)
        b = mk(qs=80, qe=180, ss=80, se=180, alen=100, ident=100, e=1e-5)
        assert len(cull_overlapping([a, b], max_overlap=0.5)) == 2
        assert len(cull_overlapping([a, b], max_overlap=0.1)) == 1

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            cull_overlapping([], max_overlap=2.0)


class TestTopHits:
    def test_filter_sort_truncate(self):
        hits = [mk(e=10.0 ** -i, score=i) for i in range(1, 8)]
        out = top_hits(hits, max_hits=3, evalue_cutoff=1e-2)
        assert len(out) == 3
        assert [h.evalue for h in out] == sorted(h.evalue for h in out)
        assert out[0].evalue == 1e-7

    def test_cutoff_excludes_everything(self):
        assert top_hits([mk(e=1.0)], max_hits=5, evalue_cutoff=1e-10) == []

    def test_invalid_max_hits(self):
        with pytest.raises(ValueError):
            top_hits([], max_hits=0, evalue_cutoff=10)


class TestTabular:
    def test_line_fields(self):
        line = format_tabular_line(mk(ident=95, alen=100))
        f = line.split("\t")
        assert f[0] == "q" and f[1] == "s"
        assert f[2] == "95.00"
        assert f[6] == "1" and f[7] == "100"  # 1-based inclusive query coords
        assert f[8] == "201" and f[9] == "300"

    def test_minus_strand_reverses_subject_coords(self):
        line = format_tabular_line(mk(strand=-1))
        f = line.split("\t")
        assert int(f[8]) > int(f[9])

    def test_roundtrip_through_text(self):
        hsps = [mk(), mk(sid="s2", strand=-1, e=3.5e-42), mk(qid="q2", e=0.002)]
        text = format_tabular(hsps)
        back = list(parse_tabular(io.StringIO(text)))
        assert len(back) == 3
        for orig, parsed in zip(hsps, back):
            assert parsed.query_id == orig.query_id
            assert parsed.subject_id == orig.subject_id
            assert parsed.q_start == orig.q_start and parsed.q_end == orig.q_end
            assert parsed.s_start == orig.s_start and parsed.s_end == orig.s_end
            assert parsed.strand == orig.strand
            assert parsed.align_len == orig.align_len
            assert parsed.evalue == pytest.approx(orig.evalue, rel=0.01)

    def test_write_append_mode(self, tmp_path):
        path = tmp_path / "hits.tsv"
        assert write_tabular([mk()], path) == 1
        assert write_tabular([mk(qid="q2")], path, append=True) == 1
        parsed = list(parse_tabular(path))
        assert [h.query_id for h in parsed] == ["q", "q2"]

    def test_parse_skips_comments_and_blanks(self):
        text = "# comment\n\n" + format_tabular_line(mk()) + "\n"
        assert len(list(parse_tabular(io.StringIO(text)))) == 1

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="12 columns"):
            list(parse_tabular(io.StringIO("a\tb\tc\n")))

    def test_tiny_evalue_preserved_with_precision(self):
        line = format_tabular_line(mk(e=6.283e-214))
        assert line.split("\t")[10] == "6.283000e-214"

    def test_true_zero_evalue_formats_as_zero(self):
        line = format_tabular_line(mk(e=0.0))
        assert line.split("\t")[10] == "0.0"
