"""CSR lookup tables vs the reference dict implementation, and the cache.

The stage-1 overhaul replaced the dict-of-arrays word table with a flat CSR
layout (sorted words + offsets + concatenated positions).  These tests pin
the invariant the rewrite rests on: ``scan()`` output is *element-wise*
identical to the reference — same hits, same order — for both programs,
masked and unmasked.  The LRU :class:`LookupCache` and its engine-level
wiring (cached runs produce byte-identical hits and real cache hits) are
covered alongside.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.alphabet import DNA, PROTEIN
from repro.bio.seq import SeqRecord
from repro.blast.engine import BlastnEngine
from repro.blast.lookup import (
    LookupCache,
    NucleotideLookup,
    ProteinLookup,
    QueryBlock,
    ReferenceNucleotideLookup,
    ReferenceProteinLookup,
    block_fingerprint,
)
from repro.blast.options import BlastOptions

dna_seq = st.text(alphabet="ACGT", min_size=11, max_size=80)
# Keep proteins short: the reference builder enumerates neighbourhoods per
# position in Python and exists only as an oracle.
protein_seq = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=3, max_size=40)


def assert_scan_identical(ref, csr, subject):
    rq, rs = ref.scan(subject)
    cq, cs = csr.scan(subject)
    assert np.array_equal(rq, cq)
    assert np.array_equal(rs, cs)


@given(st.lists(dna_seq, min_size=1, max_size=4), dna_seq, st.booleans())
@settings(max_examples=40, deadline=None)
def test_nucleotide_scan_matches_reference(seqs, subject_text, use_mask):
    records = [SeqRecord(f"q{i}", s) for i, s in enumerate(seqs)]
    block = QueryBlock(records, "blastn", use_mask=use_mask)
    ref = ReferenceNucleotideLookup(block)
    csr = NucleotideLookup(block)
    assert csr.n_words == ref.n_words
    assert_scan_identical(ref, csr, DNA.encode(subject_text))


@given(st.lists(protein_seq, min_size=1, max_size=3), protein_seq, st.booleans())
@settings(max_examples=25, deadline=None)
def test_protein_scan_matches_reference(seqs, subject_text, use_mask):
    records = [SeqRecord(f"q{i}", s) for i, s in enumerate(seqs)]
    block = QueryBlock(records, "blastp", use_mask=use_mask)
    ref = ReferenceProteinLookup(block)
    csr = ProteinLookup(block)
    assert csr.n_words == ref.n_words
    assert csr.n_postings == sum(v.size for v in ref._table.values())
    assert_scan_identical(ref, csr, PROTEIN.encode(subject_text))


@given(st.lists(dna_seq, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_csr_structure_invariants(seqs):
    records = [SeqRecord(f"q{i}", s) for i, s in enumerate(seqs)]
    lut = NucleotideLookup(QueryBlock(records, "blastn", use_mask=False))
    words, offsets = lut._words, lut._offsets
    assert np.all(np.diff(words) > 0)  # strictly ascending, deduplicated
    assert offsets[0] == 0 and offsets[-1] == lut.n_postings
    assert np.all(np.diff(offsets) > 0)  # every listed word has postings
    for i, w in enumerate(words.tolist()):
        np.testing.assert_array_equal(
            lut.postings(w), lut._positions[offsets[i] : offsets[i + 1]]
        )
        # positions ascend within a word (the admission loop relies on it)
        assert np.all(np.diff(lut.postings(w)) > 0)


def test_postings_of_absent_word_is_empty():
    lut = NucleotideLookup(QueryBlock([SeqRecord("q", "ACGT" * 10)], "blastn", use_mask=False))
    missing = int(lut._words.max()) + 1
    assert lut.postings(missing).size == 0


# ------------------------------------------------------------------ cache

def _block(tag: str):
    return [SeqRecord(f"{tag}{i}", "ACGTACGTACGTACG" + "ACGT" * i) for i in range(1, 3)]


def test_lookup_cache_lru_eviction_and_counters():
    cache = LookupCache(capacity=2)
    blocks = {k: _block(k) for k in "abc"}
    built = {k: NucleotideLookup(QueryBlock(v, "blastn", use_mask=False)) for k, v in blocks.items()}
    keys = {k: ("blastn", block_fingerprint(v)) for k, v in blocks.items()}

    assert cache.get(keys["a"]) is None  # miss
    cache.put(keys["a"], QueryBlock(blocks["a"], "blastn", use_mask=False), built["a"])
    cache.put(keys["b"], QueryBlock(blocks["b"], "blastn", use_mask=False), built["b"])
    assert cache.get(keys["a"])[1] is built["a"]  # hit refreshes recency
    cache.put(keys["c"], QueryBlock(blocks["c"], "blastn", use_mask=False), built["c"])  # evicts b
    assert len(cache) == 2
    assert cache.get(keys["b"]) is None
    assert cache.get(keys["a"]) is not None
    assert cache.get(keys["c"]) is not None
    assert cache.hits == 3 and cache.misses == 2


def test_lookup_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        LookupCache(capacity=0)


def test_block_fingerprint_is_content_based():
    a = [SeqRecord("q0", "ACGTACGTACGT")]
    b = [SeqRecord("q0", "ACGTACGTACGT")]  # distinct objects, same content
    c = [SeqRecord("q0", "ACGTACGTACGA")]
    assert block_fingerprint(a) == block_fingerprint(b)
    assert block_fingerprint(a) != block_fingerprint(c)


def test_engine_cached_matches_uncached_across_partitions():
    """Cached sweeps return identical hits and actually hit the cache."""
    from repro.bio.simulate import mutate_dna, random_genome

    genomes = [random_genome(3000, seed_or_rng=20 + i) for i in range(4)]
    queries = [
        SeqRecord(f"q{i}", mutate_dna(genomes[i][400:1000], 0.04, seed_or_rng=50 + i))
        for i in range(3)
    ]

    class Part:
        def __init__(self, name, recs):
            self.name, self._recs = name, recs
            self.num_seqs = len(recs)
            self.total_length = sum(len(r.seq) for r in recs)

        def __iter__(self):
            for r in self._recs:
                yield r.id, DNA.encode(r.seq)

    parts = [
        Part(f"p{j}", [SeqRecord(f"s{j}_{k}", genomes[2 * j + k]) for k in range(2)])
        for j in range(2)
    ]
    opts = BlastOptions.blastn()

    plain = BlastnEngine(opts)
    cached = BlastnEngine(opts)
    cache = LookupCache(capacity=4)
    cached.set_lookup_cache(cache)

    for sweep in range(2):
        for p in parts:
            assert plain.search_block(queries, p) == cached.search_block(queries, p)
    # first encounter is the only miss; the other three searches hit
    assert cache.misses == 1 and cache.hits == 3
    assert cached.last_stats.lookup_cache_hits == 1
