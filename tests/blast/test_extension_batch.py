"""Directed tests for the batched stage-2 kernel and its engine wiring.

Complements the hypothesis parity suite in
``tests/properties/test_extension_kernels.py`` with deterministic edge cases
(chunking, empty batches, window truncation) and an engine-level check that
shrinking ``extension_window`` — which forces most hits down the scalar
fallback path — changes nothing about the emitted HSPs.
"""

import numpy as np
import pytest

from repro.bio import (
    SeqRecord,
    mutate_dna,
    random_genome,
    shred_records,
    synthetic_community,
    synthetic_nt_database,
    synthetic_protein_database,
)
from repro.bio.alphabet import DNA
from repro.blast import BlastOptions, DatabaseAlias, format_database, make_engine
from repro.blast.extend import batch_ungapped_extend, ungapped_extend
from repro.blast.matrices import nucleotide_matrix

NT = nucleotide_matrix(1, -2)


class TestBatchKernel:
    def test_empty_batch(self):
        seq = DNA.encode(random_genome(50, seed_or_rng=0))
        empty = np.empty(0, dtype=np.int64)
        ext = batch_ungapped_extend(seq, seq, empty, empty, 11, NT, 20.0)
        assert ext.score.size == 0
        assert ext.complete.size == 0

    def test_chunking_is_invisible(self):
        """Results must not depend on the chunk size the rows stream in."""
        base = random_genome(300, seed_or_rng=1)
        q = DNA.encode(base)
        s = DNA.encode(mutate_dna(base, 0.06, seed_or_rng=2))
        rng = np.random.default_rng(3)
        qp = rng.integers(0, q.size - 11 + 1, size=40)
        sp = rng.integers(0, s.size - 11 + 1, size=40)
        whole = batch_ungapped_extend(q, s, qp, sp, 11, NT, 20.0, window=32)
        chunked = batch_ungapped_extend(q, s, qp, sp, 11, NT, 20.0, window=32, chunk=7)
        for field in ("score", "q_start", "q_end", "s_start", "s_end", "complete"):
            np.testing.assert_array_equal(
                getattr(whole, field), getattr(chunked, field)
            )

    def test_long_extension_escalates_to_completion(self):
        """A perfect self-match outruns the initial window; escalation keeps
        widening until it terminates, so the result still matches scalar."""
        seq = DNA.encode(random_genome(200, seed_or_rng=4))
        u = ungapped_extend(seq, seq, 90, 90, 11, NT, 20.0)
        assert (u.q_start, u.q_end) == (0, 200)
        ext = batch_ungapped_extend(
            seq, seq, np.array([90]), np.array([90]), 11, NT, 20.0, window=8
        )
        assert ext.complete[0]
        assert int(ext.score[0]) == u.score
        assert (int(ext.q_start[0]), int(ext.q_end[0])) == (0, 200)
        # Capping the escalation reinstates the incomplete report.
        capped = batch_ungapped_extend(
            seq, seq, np.array([90]), np.array([90]), 11, NT, 20.0,
            window=8, max_window=8,
        )
        assert not capped.complete[0]
        assert int(capped.score[0]) <= u.score

    def test_window_exactly_covering_reach_is_complete(self):
        """avail == window: the window covers everything reachable, so the
        row is complete even though no X-drop fired inside it."""
        seq = DNA.encode(random_genome(60, seed_or_rng=5))
        word = 11
        qp = np.array([20])
        # Right reach = 60 - (20 + 11) = 29; left reach = 20.
        ext = batch_ungapped_extend(seq, seq, qp, qp, word, NT, 50.0, window=29)
        assert ext.complete[0]
        u = ungapped_extend(seq, seq, 20, 20, word, NT, 50.0)
        assert int(ext.score[0]) == u.score
        assert int(ext.q_start[0]) == u.q_start and int(ext.q_end[0]) == u.q_end
        # One step short and capped there: the right side cannot prove
        # termination, so the row reports incomplete.
        short = batch_ungapped_extend(
            seq, seq, qp, qp, word, NT, 50.0, window=28, max_window=28
        )
        assert not short.complete[0]


def _nt_workload(tmp_path):
    com = synthetic_community(n_genomes=3, genome_length=2500, seed=11)
    db = synthetic_nt_database(
        com, n_decoys=2, decoy_length=1500, homolog_rate=0.05, seed=12
    )
    alias_path = format_database(db, tmp_path, "nt", kind="dna",
                                 max_volume_bytes=1 << 20)
    reads = list(shred_records(com.genomes[:2]))[:8]
    return reads, DatabaseAlias.load(alias_path)


class TestEngineWindowInvariance:
    """The batch window is a performance knob, never a results knob."""

    @pytest.mark.parametrize("window", [1, 4, 256])
    def test_blastn_hsps_window_invariant(self, tmp_path, window):
        reads, alias = _nt_workload(tmp_path)
        part = alias.open_partition(0)
        baseline_eng = make_engine(BlastOptions.blastn(evalue=1.0))
        baseline = baseline_eng.search_block(reads, part)
        eng = make_engine(BlastOptions.blastn(evalue=1.0, extension_window=window))
        hits = eng.search_block(reads, part)
        assert hits == baseline
        # Same admissions either way: the fallback path feeds the same
        # trigger bookkeeping as the batched fast path.
        assert eng.last_stats.n_ungapped == baseline_eng.last_stats.n_ungapped
        assert eng.last_stats.n_gapped == baseline_eng.last_stats.n_gapped

    def test_blastp_hsps_window_invariant(self, tmp_path):
        _, db = synthetic_protein_database(
            n_families=2, members_per_family=3, length=180, seed=13
        )
        alias = DatabaseAlias.load(
            format_database(db, tmp_path, "prot", kind="protein")
        )
        part = alias.open_partition(0)
        queries = [SeqRecord(f"q{i}", db[i].seq[10:150]) for i in range(2)]
        baseline = make_engine(BlastOptions.blastp(evalue=1e-3)).search_block(
            queries, part
        )
        assert baseline, "workload must actually produce hits"
        forced_fallback = make_engine(
            BlastOptions.blastp(evalue=1e-3, extension_window=1)
        ).search_block(queries, part)
        assert forced_fallback == baseline
