"""The distributed seed-index prototype (§V's 'ground-breaking' idea)."""

import pytest

from repro.bio import (
    SeqRecord,
    random_genome,
    shred_records,
    synthetic_community,
    synthetic_nt_database,
)
from repro.blast import BlastOptions, DatabaseAlias, format_database, make_engine
from repro.blast.seedindex import DistributedSeedIndex
from repro.mpi import run_spmd


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("seedidx")
    com = synthetic_community(n_genomes=3, genome_length=1800, seed=41)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1200, homolog_rate=0.04, seed=42)
    alias_path = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1200)
    reads = list(shred_records(com.genomes))[:6]
    return str(alias_path), reads


def _run_index(nprocs, alias_path, queries, **kwargs):
    def main(comm):
        alias = DatabaseAlias.load(alias_path)
        index = DistributedSeedIndex(comm, alias, word_size=11)
        stats = index.global_stats()
        cands = index.candidates(queries, **kwargs)
        return stats, cands

    return run_spmd(nprocs, main)


class TestBuild:
    def test_global_postings_independent_of_rank_count(self, workload):
        alias_path, reads = workload
        (stats1, _), = _run_index(1, alias_path, reads[:1])[:1]
        results4 = _run_index(4, alias_path, reads[:1])
        stats4 = results4[0][0]
        # Total postings = every word window of every DB sequence.
        assert stats1[1] == stats4[1]
        alias = DatabaseAlias.load(alias_path)
        expected = sum(
            max(alias.open_partition(p).lengths[i] - 11 + 1, 0)
            for p in range(alias.num_partitions)
            for i in range(alias.open_partition(p).num_seqs)
        )
        assert stats1[1] == expected

    def test_protein_db_rejected(self, workload, tmp_path):
        from repro.bio import synthetic_protein_database

        _, db = synthetic_protein_database(n_families=1, members_per_family=1, length=50)
        alias_path = format_database(db, tmp_path, "p", kind="protein")

        def main(comm):
            with pytest.raises(ValueError, match="nucleotide"):
                DistributedSeedIndex(comm, DatabaseAlias.load(alias_path))
            return True

        assert run_spmd(1, main) == [True]

    def test_word_size_validation(self, workload):
        alias_path, _ = workload

        def main(comm):
            with pytest.raises(ValueError):
                DistributedSeedIndex(comm, DatabaseAlias.load(alias_path), word_size=20)
            return True

        assert run_spmd(1, main) == [True]


class TestCandidates:
    def test_candidates_cover_engine_hits(self, workload):
        """Index candidates must include every subject the engine reports."""
        alias_path, reads = workload
        alias = DatabaseAlias.load(alias_path)
        opts = BlastOptions.blastn(evalue=1e-5).with_db_size(
            alias.total_length, alias.num_seqs
        )
        engine = make_engine(opts)
        engine_pairs = set()
        for p in range(alias.num_partitions):
            for h in engine.search_block(reads, alias.open_partition(p)):
                engine_pairs.add((h.query_id, h.subject_id))

        results = _run_index(3, alias_path, reads, min_word_hits=2)
        cands = results[0][1]
        cand_pairs = {
            (qid, c.subject_id) for qid, cs in cands.items() for c in cs
        }
        assert engine_pairs, "workload must produce engine hits"
        assert engine_pairs <= cand_pairs

    def test_all_ranks_agree(self, workload):
        alias_path, reads = workload
        results = _run_index(3, alias_path, reads)
        first = results[0][1]
        for _stats, cands in results[1:]:
            assert cands == first

    def test_rank_count_invariance(self, workload):
        alias_path, reads = workload
        serial = _run_index(1, alias_path, reads)[0][1]
        parallel = _run_index(4, alias_path, reads)[0][1]
        assert set(serial) == set(parallel)
        for qid in serial:
            assert {(c.subject_id, c.strand) for c in serial[qid]} == {
                (c.subject_id, c.strand) for c in parallel[qid]
            }

    def test_support_threshold_filters(self, workload):
        alias_path, reads = workload
        loose = _run_index(2, alias_path, reads, min_word_hits=1)[0][1]
        strict = _run_index(2, alias_path, reads, min_word_hits=50)[0][1]
        n_loose = sum(len(v) for v in loose.values())
        n_strict = sum(len(v) for v in strict.values())
        assert n_strict < n_loose
        # Homolog candidates have massive word support; they survive.
        assert any(
            c.subject_id.startswith("db_genome") for v in strict.values() for c in v
        )

    def test_unrelated_query_has_no_strong_candidates(self, workload):
        alias_path, _ = workload
        noise = [SeqRecord("noise", random_genome(400, seed_or_rng=777))]
        cands = _run_index(2, alias_path, noise, min_word_hits=3)[0][1]
        assert cands.get("noise", []) == []

    def test_min_word_hits_validation(self, workload):
        alias_path, reads = workload

        def main(comm):
            index = DistributedSeedIndex(comm, DatabaseAlias.load(alias_path))
            with pytest.raises(ValueError):
                index.candidates(reads[:1], min_word_hits=0)
            return True

        assert run_spmd(1, main) == [True]
