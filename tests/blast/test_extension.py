"""Ungapped and gapped extension vs the brute-force Smith-Waterman oracle."""

import numpy as np
import pytest

from repro.bio.alphabet import DNA, PROTEIN
from repro.bio import random_genome, mutate_dna, random_protein
from repro.blast.extend import UngappedHSP, extension_scores, ungapped_extend
from repro.blast.gapped import extend_gapped, half_extension
from repro.blast.matrices import BLOSUM62, nucleotide_matrix
from repro.blast.reference import smith_waterman, smith_waterman_score

NT = nucleotide_matrix(1, -2)


class TestUngapped:
    def test_perfect_match_extends_fully(self):
        seq = DNA.encode(random_genome(100, seed_or_rng=1))
        u = ungapped_extend(seq, seq, 40, 40, 11, NT, xdrop=20)
        assert (u.q_start, u.q_end) == (0, 100)
        assert (u.s_start, u.s_end) == (0, 100)
        assert u.score == 100

    def test_extension_stops_at_mismatch_wall(self):
        core = random_genome(60, seed_or_rng=2)
        q = DNA.encode("T" * 50 + core + "T" * 50)
        s = DNA.encode("G" * 50 + core + "G" * 50)
        u = ungapped_extend(q, s, 60, 60, 11, NT, xdrop=10)
        assert u.q_start >= 45 and u.q_end <= 115
        assert u.score <= 60

    def test_seed_word_always_included(self):
        q = DNA.encode("ACGTACGTACGTA")
        s = q.copy()
        u = ungapped_extend(q, s, 1, 1, 11, NT, xdrop=5)
        assert u.q_start <= 1 and u.q_end >= 12

    def test_xdrop_tolerates_isolated_mismatch(self):
        base = random_genome(80, seed_or_rng=3)
        mutated = base[:40] + ("A" if base[40] != "A" else "C") + base[41:]
        q, s = DNA.encode(base), DNA.encode(mutated)
        u = ungapped_extend(q, s, 0, 0, 11, NT, xdrop=20)
        # One mismatch costs 3 (lose +1, gain -2); xdrop=20 sails through.
        assert u.q_end == 80
        assert u.score == 79 - 2 - 1 + 1  # 79 matches*1 + 1 mismatch*-2

    def test_out_of_range_seed_rejected(self):
        q = DNA.encode("ACGTACGTACGTACGT")
        with pytest.raises(ValueError):
            ungapped_extend(q, q, 14, 0, 11, NT, xdrop=10)

    def test_extension_scores_validates_lengths(self):
        with pytest.raises(ValueError):
            extension_scores(np.zeros(3, np.uint8), np.zeros(4, np.uint8), NT)

    def test_seed_point_is_inside_segment(self):
        u = UngappedHSP(score=50, q_start=10, q_end=60, s_start=110, s_end=160)
        qm, sm = u.seed_point()
        assert 10 <= qm < 60 and 110 <= sm < 160
        assert qm - 10 == sm - 110  # same offset on the diagonal


class TestGappedVsOracle:
    """The banded X-drop extension must recover the optimal local score
    whenever the optimum passes through the seed and fits in the band."""

    @pytest.mark.parametrize("seed", range(6))
    def test_dna_homologs_match_smith_waterman(self, seed):
        base = random_genome(220, seed_or_rng=seed)
        q = DNA.encode(base)
        s = DNA.encode(mutate_dna(base, 0.08, seed_or_rng=seed + 100))
        sw_score, (qs, qe, ss, se) = smith_waterman(q, s, NT, 5, 2)
        # Seed inside the optimal alignment, on its path: pick matching
        # anchor by scanning for a shared 12-mer.
        anchor = None
        for i in range(qs, qe - 12):
            window = base[i : i + 12]
            j = DNA.decode(s).find(window)
            if j >= 0:
                anchor = (i, j)
                break
        assert anchor is not None, "no exact 12-mer anchor found"
        g = extend_gapped(q, s, anchor[0], anchor[1], NT, 5, 2, xdrop=50, band=64)
        assert g is not None
        assert g.score == sw_score

    @pytest.mark.parametrize("seed", range(4))
    def test_protein_homologs_match_smith_waterman(self, seed):
        base = random_protein(150, seed_or_rng=seed)
        codes_q = PROTEIN.encode(base)
        rng = np.random.default_rng(seed + 7)
        chars = list(base)
        aa = "ARNDCQEGHILKMFPSTWYV"
        for i in range(len(chars)):
            if rng.random() < 0.15:
                chars[i] = aa[rng.integers(0, 20)]
        codes_s = PROTEIN.encode("".join(chars))
        sw_score, _ = smith_waterman(codes_q, codes_s, BLOSUM62, 11, 1)
        # Anchor at an identity triple inside the sequences.
        anchor = next(
            i for i in range(20, 120) if (codes_q[i : i + 3] == codes_s[i : i + 3]).all()
        )
        g = extend_gapped(codes_q, codes_s, anchor, anchor, BLOSUM62, 11, 1, xdrop=60, band=48)
        assert g is not None
        assert g.score == sw_score

    def test_alignment_with_indel_is_recovered(self):
        left = random_genome(80, seed_or_rng=10)
        right = random_genome(80, seed_or_rng=11)
        q = DNA.encode(left + right)
        s = DNA.encode(left + "ACGTA" + right)  # 5-base insertion in subject
        g = extend_gapped(q, s, 10, 10, NT, 5, 2, xdrop=40, band=32)
        assert g is not None
        assert g.gaps == 5
        expected = 160 - (5 + 5 * 2)  # matches minus gap cost open5 + 5*ext2
        assert g.score == expected
        assert g.q_end - g.q_start == 160
        assert g.s_end - g.s_start == 165

    def test_identity_counts_exact_on_perfect_match(self):
        seq = DNA.encode(random_genome(90, seed_or_rng=12))
        g = extend_gapped(seq, seq, 45, 45, NT, 5, 2, xdrop=30, band=16)
        assert g.identities == 90
        assert g.align_len == 90
        assert g.gaps == 0

    def test_no_alignment_returns_none(self):
        q = DNA.encode("A" * 30)
        s = DNA.encode("C" * 30)
        assert extend_gapped(q, s, 15, 15, NT, 5, 2, xdrop=10, band=8) is None

    def test_seed_out_of_range(self):
        q = DNA.encode("ACGT")
        with pytest.raises(ValueError):
            extend_gapped(q, q, 9, 0, NT, 5, 2, xdrop=10, band=8)

    def test_half_extension_empty_inputs(self):
        empty = np.empty(0, dtype=np.uint8)
        q = DNA.encode("ACGT")
        h = half_extension(empty, q, NT, 5, 2, 10, 8)
        assert h.score == 0 and h.align_len == 0

    def test_band_limits_gap_drift(self):
        # A 12-base insertion is profitable to bridge (120 matches - 29 gap
        # cost) but needs a diagonal drift of 12, beyond a band of 8.
        left = random_genome(60, seed_or_rng=13)
        right = random_genome(60, seed_or_rng=14)
        insert = random_genome(12, seed_or_rng=15)
        q = DNA.encode(left + right)
        s = DNA.encode(left + insert + right)
        narrow = extend_gapped(q, s, 5, 5, NT, 5, 2, xdrop=200, band=8)
        wide = extend_gapped(q, s, 5, 5, NT, 5, 2, xdrop=200, band=48)
        assert wide.score > narrow.score
        assert wide.gaps == 12
        assert wide.score == 120 - (5 + 12 * 2)


class TestOracleItself:
    def test_score_and_full_variant_agree(self):
        q = DNA.encode(random_genome(70, seed_or_rng=20))
        s = DNA.encode(mutate_dna(DNA.decode(q), 0.1, seed_or_rng=21))
        score_only = smith_waterman_score(q, s, NT, 5, 2)
        score_full, (qs, qe, ss, se) = smith_waterman(q, s, NT, 5, 2)
        assert score_only == score_full
        assert qs < qe and ss < se

    def test_known_tiny_alignment(self):
        q = DNA.encode("ACGT")
        s = DNA.encode("TACGTA")
        score, (qs, qe, ss, se) = smith_waterman(q, s, NT, 5, 2)
        assert score == 4
        assert (qs, qe, ss, se) == (0, 4, 1, 5)

    def test_no_similarity_scores_zero(self):
        assert smith_waterman_score(DNA.encode("AAAA"), DNA.encode("CCCC"), NT, 5, 2) == 0
