"""Word lookup tables and low-complexity masking."""

import numpy as np
import pytest

from repro.bio import SeqRecord, random_genome, random_protein
from repro.bio.alphabet import DNA, PROTEIN
from repro.bio.seq import reverse_complement
from repro.blast.dust import dust_intervals, dust_mask, dust_score
from repro.blast.lookup import NucleotideLookup, ProteinLookup, QueryBlock
from repro.blast.matrices import BLOSUM62
from repro.blast.seg import seg_mask, window_entropy


class TestQueryBlock:
    def test_blastn_block_has_two_contexts_per_query(self):
        recs = [SeqRecord("a", random_genome(50, seed_or_rng=1)),
                SeqRecord("b", random_genome(60, seed_or_rng=2))]
        block = QueryBlock(recs, "blastn", use_mask=False)
        assert len(block.contexts) == 4
        assert [c.strand for c in block.contexts] == [1, -1, 1, -1]
        assert block.total_length == 2 * (50 + 60)
        # Minus context holds the reverse complement.
        assert DNA.decode(block.contexts[1].codes) == reverse_complement(recs[0].seq)

    def test_blastp_block_single_context(self):
        recs = [SeqRecord("p", random_protein(40, seed_or_rng=1))]
        block = QueryBlock(recs, "blastp", use_mask=False)
        assert len(block.contexts) == 1

    def test_context_of_maps_positions(self):
        recs = [SeqRecord("a", random_genome(30, seed_or_rng=3)),
                SeqRecord("b", random_genome(40, seed_or_rng=4))]
        block = QueryBlock(recs, "blastn", use_mask=False)
        assert block.context_of(0) == 0
        assert block.context_of(29) == 0
        assert block.context_of(30) == 1
        assert block.context_of(60) == 2
        np.testing.assert_array_equal(block.context_of(np.array([0, 59, 60])), [0, 1, 2])

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            QueryBlock([], "blastn", use_mask=False)


class TestNucleotideLookup:
    def test_finds_all_exact_word_matches(self):
        seq = random_genome(200, seed_or_rng=5)
        block = QueryBlock([SeqRecord("q", seq)], "blastn", use_mask=False)
        lut = NucleotideLookup(block, word_size=11)
        subject = DNA.encode(seq)
        qpos, spos = lut.scan(subject)
        # Self-scan must produce the main diagonal of the plus context.
        plus = [(int(qp), int(sp)) for qp, sp in zip(qpos, spos)
                if block.context_of(int(qp)) == 0]
        diag = [(p, p) for p in range(200 - 11 + 1)]
        assert set(diag) <= set(plus)

    def test_no_hits_for_unrelated_sequence(self):
        block = QueryBlock([SeqRecord("q", random_genome(100, seed_or_rng=6))],
                           "blastn", use_mask=False)
        lut = NucleotideLookup(block, word_size=11)
        qpos, spos = lut.scan(DNA.encode(random_genome(100, seed_or_rng=999)))
        assert qpos.size == spos.size
        assert qpos.size < 5  # chance 11-mer collisions are very rare

    def test_masked_positions_produce_no_seeds(self):
        low = "A" * 80  # poly-A: DUST masks it
        block = QueryBlock([SeqRecord("q", low)], "blastn", use_mask=True)
        lut = NucleotideLookup(block, word_size=11)
        qpos, _ = lut.scan(DNA.encode(low))
        assert qpos.size == 0

    def test_word_size_validation(self):
        block = QueryBlock([SeqRecord("q", "ACGTACGT")], "blastn", use_mask=False)
        with pytest.raises(ValueError):
            NucleotideLookup(block, word_size=2)

    def test_short_query_yields_empty_table(self):
        block = QueryBlock([SeqRecord("q", "ACGT")], "blastn", use_mask=False)
        lut = NucleotideLookup(block, word_size=11)
        assert lut.n_words == 0
        qpos, spos = lut.scan(DNA.encode(random_genome(50, seed_or_rng=1)))
        assert qpos.size == 0


class TestProteinLookup:
    def test_self_words_present(self):
        seq = random_protein(60, seed_or_rng=7)
        block = QueryBlock([SeqRecord("p", seq)], "blastp", use_mask=False)
        lut = ProteinLookup(block, threshold=11)
        qpos, spos = lut.scan(PROTEIN.encode(seq))
        hits = set(zip(qpos.tolist(), spos.tolist()))
        codes = PROTEIN.encode(seq)
        for i in range(len(seq) - 2):
            self_score = int(BLOSUM62[codes[i], codes[i]] + BLOSUM62[codes[i+1], codes[i+1]]
                             + BLOSUM62[codes[i+2], codes[i+2]])
            if self_score >= 11:
                assert (i, i) in hits

    def test_neighborhood_words_respect_threshold(self):
        # Single word 'WWW' has big self score; neighbours must score >= T.
        block = QueryBlock([SeqRecord("p", "WWW")], "blastp", use_mask=False)
        lut = ProteinLookup(block, threshold=11)
        W = PROTEIN.letters.index("W")
        for word in lut._table:
            a, b, c = word // 400, (word // 20) % 20, word % 20
            score = int(BLOSUM62[W, a] + BLOSUM62[W, b] + BLOSUM62[W, c])
            assert score >= 11

    def test_higher_threshold_smaller_table(self):
        seq = random_protein(50, seed_or_rng=8)
        block = QueryBlock([SeqRecord("p", seq)], "blastp", use_mask=False)
        loose = ProteinLookup(block, threshold=10)
        strict = ProteinLookup(block, threshold=13)
        assert strict.n_words < loose.n_words

    def test_ambiguity_codes_in_subject_skipped(self):
        seq = random_protein(30, seed_or_rng=9)
        block = QueryBlock([SeqRecord("p", seq)], "blastp", use_mask=False)
        lut = ProteinLookup(block)
        subject = PROTEIN.encode("XXX" + seq + "XXX")
        qpos, spos = lut.scan(subject)
        assert qpos.size > 0  # the embedded copy is still found
        assert (spos >= 1).all()  # no window starting in the X run matches

    def test_word_size_must_be_three(self):
        block = QueryBlock([SeqRecord("p", "ARND")], "blastp", use_mask=False)
        with pytest.raises(ValueError):
            ProteinLookup(block, word_size=4)


class TestDust:
    def test_polya_is_masked(self):
        mask = dust_mask("A" * 100)
        assert mask.all()

    def test_random_sequence_unmasked(self):
        mask = dust_mask(random_genome(500, seed_or_rng=10))
        assert mask.sum() < 25  # < 5% false masking

    def test_tandem_repeat_region_masked(self):
        clean = random_genome(150, seed_or_rng=11)
        repeat = "ACG" * 40
        mask = dust_mask(clean + repeat + clean)
        region = mask[150 : 150 + 120]
        assert region.mean() > 0.8
        assert mask[:120].sum() < 30

    def test_dust_score_extremes(self):
        assert dust_score(DNA.encode("A" * 64)) > 100
        assert dust_score(DNA.encode(random_genome(64, seed_or_rng=12))) < 10

    def test_intervals_cover_mask(self):
        seq = random_genome(100, seed_or_rng=13) + "T" * 80 + random_genome(100, seed_or_rng=14)
        intervals = dust_intervals(seq)
        assert intervals, "poly-T run must be reported"
        covered = set()
        for a, b in intervals:
            assert a < b
            covered.update(range(a, b))
        assert set(range(110, 270)) & covered

    def test_short_sequence_no_crash(self):
        assert not dust_mask("AC").any()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            dust_mask("ACGT", window=4)
        with pytest.raises(ValueError):
            dust_mask("ACGT", step=0)


class TestSeg:
    def test_homopolymer_masked(self):
        mask = seg_mask("Q" * 50)
        assert mask.all()

    def test_random_protein_mostly_unmasked(self):
        mask = seg_mask(random_protein(300, seed_or_rng=15))
        assert mask.mean() < 0.1

    def test_low_complexity_region_masked(self):
        seq = random_protein(60, seed_or_rng=16) + "PSPSPSPSPSPSPSPS" + random_protein(60, seed_or_rng=17)
        mask = seg_mask(seq)
        assert mask[60:76].mean() > 0.9

    def test_window_entropy_bounds(self):
        assert window_entropy(PROTEIN.encode("AAAA")) == 0.0
        e = window_entropy(PROTEIN.encode("ARNDCQEGHILK"))
        assert e == pytest.approx(np.log2(12))

    def test_validation(self):
        with pytest.raises(ValueError):
            seg_mask("ARND", window=2)
        with pytest.raises(ValueError):
            seg_mask("ARND", threshold=0)
