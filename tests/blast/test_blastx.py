"""Translated search (blastx): frames, coordinate mapping, statistics."""

import numpy as np
import pytest

from repro.bio import SeqRecord, random_genome, random_protein
from repro.bio.seq import CODON_TABLE, reverse_complement
from repro.blast import BlastOptions, DatabaseAlias, format_database
from repro.blast.blastx import BlastxEngine, translated_frames
from repro.blast.hsp import HSP


def back_translate(protein: str) -> str:
    """Deterministic codon per amino acid."""
    by_aa: dict[str, str] = {}
    for codon, aa in sorted(CODON_TABLE.items()):
        by_aa.setdefault(aa, codon)
    return "".join(by_aa[a] for a in protein)


@pytest.fixture(scope="module")
def protein_db(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("blastx")
    target = random_protein(150, seed_or_rng=3)
    decoy = random_protein(150, seed_or_rng=99)
    alias = format_database(
        [SeqRecord("prot_target", target), SeqRecord("decoy", decoy)],
        tmp, "p", kind="protein",
    )
    return str(alias), target


class TestTranslatedFrames:
    def test_six_frames_for_stop_free_dna(self):
        # Codons avoiding stop codons in frame +1 only; other frames vary.
        rec = SeqRecord("r", back_translate(random_protein(60, seed_or_rng=1)))
        frames = translated_frames(rec, min_aa=5)
        signs = [s for s, _ in frames]
        assert 1 in signs  # the encoding frame always survives
        assert all(s in (1, 2, 3, -1, -2, -3) for s in signs)
        for s, frec in frames:
            assert frec.id.endswith(f"|frame{s:+d}")
            assert len(frec.seq) >= 5

    def test_short_frames_dropped(self):
        rec = SeqRecord("tiny", "ATGTAA" * 2)  # stops everywhere
        assert translated_frames(rec, min_aa=5) == []


class TestBlastxSearch:
    def _engine(self):
        return BlastxEngine(BlastOptions.blastp(evalue=1e-8))

    def test_forward_frame_hit_with_nt_coordinates(self, protein_db):
        alias_path, target = protein_db
        dna = back_translate(target)
        # Shift by 1 base: the protein lies in frame +2.
        query = SeqRecord("readF", "G" + dna + "AA")
        part = DatabaseAlias.load(alias_path).open_partition(0)
        hits = self._engine().search_block([query], part)
        assert hits
        best = hits[0]
        assert best.subject_id == "prot_target"
        assert best.frame == 2
        assert best.strand == 1
        # The aligned region in nt coordinates covers the encoded protein.
        assert best.q_start >= 1
        assert best.q_end <= 1 + 3 * len(target)
        assert (best.q_end - best.q_start) == 3 * (best.s_end - best.s_start)
        assert best.pident == 100.0

    def test_reverse_frame_hit(self, protein_db):
        alias_path, target = protein_db
        dna = back_translate(target)
        query = SeqRecord("readR", reverse_complement("AC" + dna))
        part = DatabaseAlias.load(alias_path).open_partition(0)
        hits = self._engine().search_block([query], part)
        assert hits
        best = hits[0]
        assert best.strand == -1
        assert best.frame < 0
        assert best.subject_id == "prot_target"
        # nt span must land inside the query and match 3x the aa span.
        assert 0 <= best.q_start < best.q_end <= len(query.seq)
        assert (best.q_end - best.q_start) == 3 * (best.s_end - best.s_start)

    def test_unrelated_dna_no_hits(self, protein_db):
        alias_path, _ = protein_db
        part = DatabaseAlias.load(alias_path).open_partition(0)
        query = SeqRecord("noise", random_genome(450, seed_or_rng=7))
        assert self._engine().search_block([query], part) == []

    def test_decoy_not_hit(self, protein_db):
        alias_path, target = protein_db
        query = SeqRecord("readF", back_translate(target))
        part = DatabaseAlias.load(alias_path).open_partition(0)
        hits = self._engine().search_block([query], part)
        assert {h.subject_id for h in hits} == {"prot_target"}

    def test_requires_protein_options(self):
        with pytest.raises(ValueError, match="blastp-style options"):
            BlastxEngine(BlastOptions.blastn())

    def test_max_hits_applied_across_frames(self, protein_db, tmp_path):
        alias_path, target = protein_db
        # Many near-copies of the target -> more hits than max_hits.
        copies = [SeqRecord(f"copy{i}", target) for i in range(6)]
        alias2 = format_database(copies, tmp_path, "many", kind="protein")
        part = DatabaseAlias.load(alias2).open_partition(0)
        eng = BlastxEngine(BlastOptions.blastp(evalue=1e-8, max_hits=3))
        hits = eng.search_block([SeqRecord("r", back_translate(target))], part)
        assert len(hits) == 3


class TestHspFrameField:
    def test_translated_span_validation(self):
        # 30 nt query span, 10 aa alignment columns: valid only with frame.
        HSP("q", "s", 50, 25.0, 1e-9, 0, 30, 0, 10, 10, 10, frame=1)
        with pytest.raises(ValueError):
            HSP("q", "s", 50, 25.0, 1e-9, 0, 30, 0, 10, 10, 10, frame=0)

    def test_invalid_frame_rejected(self):
        with pytest.raises(ValueError):
            HSP("q", "s", 50, 25.0, 1e-9, 0, 30, 0, 10, 10, 10, frame=4)
