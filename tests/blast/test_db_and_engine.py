"""formatdb volumes, DB readers, the search engine, and DB-split invariance."""

import numpy as np
import pytest

from repro.bio import (
    SeqRecord,
    mutate_dna,
    random_genome,
    shred_records,
    synthetic_community,
    synthetic_nt_database,
    synthetic_protein_database,
)
from repro.blast import (
    BlastOptions,
    BlastnEngine,
    DatabaseAlias,
    format_database,
    make_engine,
)
from repro.blast.formatdb import DatabaseWriter, pack_2bit, unpack_2bit
from repro.blast.hsp import HSP


class TestPacking:
    def test_roundtrip_all_lengths(self):
        rng = np.random.default_rng(0)
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 100, 1001]:
            codes = rng.integers(0, 4, size=n).astype(np.uint8)
            packed = pack_2bit(codes)
            assert packed.size == (n + 3) // 4
            np.testing.assert_array_equal(unpack_2bit(packed, n), codes)

    def test_pack_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            pack_2bit(np.array([4], dtype=np.uint8))

    def test_unpack_length_check(self):
        with pytest.raises(ValueError):
            unpack_2bit(np.zeros(1, dtype=np.uint8), 5)


class TestFormatAndRead:
    def _db(self, tmp_path, n=10, length=2000, vol_bytes=2048):
        recs = [SeqRecord(f"s{i}", random_genome(length, seed_or_rng=i)) for i in range(n)]
        alias_path = format_database(recs, tmp_path, "db", kind="dna",
                                     max_volume_bytes=vol_bytes)
        return recs, DatabaseAlias.load(alias_path)

    def test_partitioning_by_volume_size(self, tmp_path):
        recs, alias = self._db(tmp_path)
        assert alias.num_partitions > 1
        assert alias.num_seqs == 10
        assert alias.total_length == sum(len(r) for r in recs)

    def test_sequences_roundtrip_across_partitions(self, tmp_path):
        recs, alias = self._db(tmp_path)
        seen = {}
        for p in range(alias.num_partitions):
            part = alias.open_partition(p)
            for i in range(part.num_seqs):
                seen[part.ids[i]] = part.sequence(i)
        assert seen == {r.id: r.seq for r in recs}

    def test_protein_volume_roundtrip(self, tmp_path):
        _, db = synthetic_protein_database(n_families=2, members_per_family=2, length=80)
        alias = DatabaseAlias.load(format_database(db, tmp_path, "p", kind="protein"))
        part = alias.open_partition(0)
        assert part.sequence(0) == db[0].seq

    def test_mid_byte_sequence_boundaries(self, tmp_path):
        # Lengths not divisible by 4 force subjects to start mid-byte.
        recs = [SeqRecord(f"odd{i}", random_genome(17 + i, seed_or_rng=i)) for i in range(6)]
        alias = DatabaseAlias.load(format_database(recs, tmp_path, "odd", kind="dna"))
        part = alias.open_partition(0)
        for i, rec in enumerate(recs):
            assert part.sequence(i) == rec.seq

    def test_load_count_tracks_reopens(self, tmp_path):
        _, alias = self._db(tmp_path, n=3, vol_bytes=1 << 20)
        part = alias.open_partition(0)
        assert part.load_count == 0
        part.codes(0)
        part.codes(1)
        assert part.load_count == 1
        part.release()
        part.codes(2)
        assert part.load_count == 2

    def test_empty_db_rejected(self, tmp_path):
        writer = DatabaseWriter(tmp_path, "empty", kind="dna")
        with pytest.raises(ValueError, match="no sequences"):
            writer.finish()

    def test_empty_sequence_rejected(self, tmp_path):
        writer = DatabaseWriter(tmp_path, "x", kind="dna")
        with pytest.raises(ValueError, match="empty sequence"):
            writer.add(SeqRecord("e", ""))

    def test_partition_index_bounds(self, tmp_path):
        _, alias = self._db(tmp_path, n=2, vol_bytes=1 << 20)
        with pytest.raises(IndexError):
            alias.partition_path(5)

    def test_cli_main(self, tmp_path):
        from repro.bio.fasta import write_fasta
        from repro.blast.formatdb import main

        fasta = tmp_path / "in.fasta"
        write_fasta([SeqRecord("a", random_genome(100, seed_or_rng=1))], fasta)
        rc = main(["-i", str(fasta), "-o", str(tmp_path / "out"), "-n", "clidb"])
        assert rc == 0
        alias = DatabaseAlias.load(tmp_path / "out" / "clidb.pal.json")
        assert alias.num_seqs == 1


def _nt_workload(tmp_path, vol_bytes=4096, n_genomes=4, genome_length=3000):
    """Community genomes shredded into reads + homolog DB in partitions."""
    com = synthetic_community(n_genomes=n_genomes, genome_length=genome_length, seed=3)
    db = synthetic_nt_database(com, n_decoys=3, decoy_length=2000, homolog_rate=0.04, seed=4)
    alias_path = format_database(db, tmp_path, "nt", kind="dna", max_volume_bytes=vol_bytes)
    reads = list(shred_records(com.genomes[:2]))[:6]
    return reads, DatabaseAlias.load(alias_path)


class TestEngine:
    def test_finds_homolog_not_decoys(self, tmp_path):
        reads, alias = _nt_workload(tmp_path, vol_bytes=1 << 20)
        part = alias.open_partition(0)
        eng = make_engine(BlastOptions.blastn(evalue=1e-6))
        hits = eng.search_block(reads, part)
        assert hits, "homologous reads must produce hits"
        assert all(h.subject_id.startswith("db_genome") for h in hits)
        assert all(h.evalue <= 1e-6 for h in hits)

    def test_hit_coordinates_locate_source_region(self, tmp_path):
        genome = random_genome(4000, seed_or_rng=30)
        db = [SeqRecord("ref", genome)]
        alias = DatabaseAlias.load(format_database(db, tmp_path, "exact", kind="dna"))
        query = SeqRecord("frag", genome[1000:1400])
        eng = make_engine(BlastOptions.blastn(evalue=1e-10))
        hits = eng.search_block([query], alias.open_partition(0))
        best = hits[0]
        assert best.s_start == 1000 and best.s_end == 1400
        assert best.identities == 400
        assert best.pident == 100.0

    def test_minus_strand_hit(self, tmp_path):
        from repro.bio.seq import reverse_complement

        genome = random_genome(2000, seed_or_rng=31)
        alias = DatabaseAlias.load(
            format_database([SeqRecord("fwd", genome)], tmp_path, "rc", kind="dna")
        )
        query = SeqRecord("rcq", reverse_complement(genome[600:950]))
        eng = make_engine(BlastOptions.blastn(evalue=1e-10))
        hits = eng.search_block([query], alias.open_partition(0))
        assert hits[0].strand == -1
        assert hits[0].s_start == 600 and hits[0].s_end == 950

    def test_evalue_cutoff_filters(self, tmp_path):
        reads, alias = _nt_workload(tmp_path, vol_bytes=1 << 20)
        part = alias.open_partition(0)
        strict = make_engine(BlastOptions.blastn(evalue=1e-50)).search_block(reads, part)
        loose = make_engine(BlastOptions.blastn(evalue=1.0)).search_block(reads, part)
        assert len(strict) <= len(loose)

    def test_max_hits_truncates_per_query(self, tmp_path):
        genome = random_genome(800, seed_or_rng=32)
        # Many similar subjects -> more than max_hits alignments per query.
        db = [SeqRecord(f"copy{i}", mutate_dna(genome, 0.02, seed_or_rng=i)) for i in range(8)]
        alias = DatabaseAlias.load(format_database(db, tmp_path, "many", kind="dna"))
        query = SeqRecord("q", genome[100:500])
        opts = BlastOptions.blastn(evalue=10.0, max_hits=3)
        hits = make_engine(opts).search_block([query], alias.open_partition(0))
        assert len(hits) == 3
        evals = [h.evalue for h in hits]
        assert evals == sorted(evals)

    def test_blastp_family_recovery(self, tmp_path):
        queries, db = synthetic_protein_database(
            n_families=3, members_per_family=3, length=150, mutation_rate=0.3, seed=6
        )
        alias = DatabaseAlias.load(format_database(db, tmp_path, "fam", kind="protein"))
        eng = make_engine(BlastOptions.blastp(evalue=1e-4))
        hits = eng.search_block(queries, alias.open_partition(0))
        # Every hit must stay within its query's family.
        for h in hits:
            fam = h.query_id[-2:]
            assert h.subject_id.startswith(f"fam{fam}")
        # Each family must be fully recovered.
        found = {(h.query_id, h.subject_id) for h in hits}
        assert len(found) == 9

    def test_program_option_mismatch_rejected(self):
        with pytest.raises(ValueError, match="engine is"):
            BlastnEngine(BlastOptions.blastp())

    def test_stats_populated(self, tmp_path):
        reads, alias = _nt_workload(tmp_path, vol_bytes=1 << 20)
        eng = make_engine(BlastOptions.blastn())
        eng.search_block(reads, alias.open_partition(0))
        st = eng.last_stats
        assert st.n_subjects == alias.open_partition(0).num_seqs
        assert st.n_word_hits > 0
        assert st.busy_seconds > 0


class TestDbSplitInvariance:
    """The paper's central correctness property: searching partitioned
    volumes with the full-DB statistics override must reproduce the unsplit
    search exactly (same hits, same E-values, same order after merge)."""

    @staticmethod
    def _hit_key(h: HSP):
        return (
            h.query_id, h.subject_id, h.score, round(h.bit_score, 6),
            h.q_start, h.q_end, h.s_start, h.s_end, h.strand,
            h.identities, h.align_len, h.gaps, round(np.log10(max(h.evalue, 1e-300)), 8),
        )

    @pytest.mark.parametrize("vol_bytes", [1100, 1600, 3000])
    def test_split_equals_unsplit(self, tmp_path, vol_bytes):
        from repro.blast.hsp import top_hits

        reads, alias_split = _nt_workload(tmp_path / "split", vol_bytes=vol_bytes)
        _, alias_whole = _nt_workload(tmp_path / "whole", vol_bytes=1 << 24)
        assert alias_split.num_partitions > 1
        assert alias_whole.num_partitions == 1
        assert alias_split.total_length == alias_whole.total_length

        opts = BlastOptions.blastn(evalue=1e-3, max_hits=20)
        # Unsplit reference.
        ref = make_engine(opts).search_block(reads, alias_whole.open_partition(0))

        # Split run with full-DB override, then reduce-style merge.
        split_opts = opts.with_db_size(alias_split.total_length, alias_split.num_seqs)
        collected: list[HSP] = []
        for p in range(alias_split.num_partitions):
            eng = make_engine(split_opts)
            collected.extend(eng.search_block(reads, alias_split.open_partition(p)))
        merged: list[HSP] = []
        by_query: dict[str, list[HSP]] = {}
        for h in collected:
            by_query.setdefault(h.query_id, []).append(h)
        for rec in reads:
            if rec.id in by_query:
                merged.extend(top_hits(by_query[rec.id], opts.max_hits, opts.evalue))

        assert sorted(map(self._hit_key, merged)) == sorted(map(self._hit_key, ref))

    def test_without_override_evalues_differ(self, tmp_path):
        reads, alias = _nt_workload(tmp_path, vol_bytes=1500)
        assert alias.num_partitions > 1
        opts = BlastOptions.blastn(evalue=10.0)
        part = alias.open_partition(0)
        plain = make_engine(opts).search_block(reads, part)
        overridden = make_engine(
            opts.with_db_size(alias.total_length, alias.num_seqs)
        ).search_block(reads, part)
        paired = {
            (h.query_id, h.subject_id, h.q_start): h.evalue for h in plain
        }
        compared = 0
        for h in overridden:
            key = (h.query_id, h.subject_id, h.q_start)
            if key in paired and h.evalue > 0:
                assert h.evalue > paired[key]  # bigger DB -> bigger E-value
                compared += 1
        assert compared > 0
