"""Option validation and engine edge cases not covered elsewhere."""

import numpy as np
import pytest

from repro.bio import SeqRecord, random_genome
from repro.blast import (
    BlastOptions,
    DatabaseAlias,
    format_database,
    make_engine,
)


class TestBlastOptions:
    def test_blastn_defaults(self):
        o = BlastOptions.blastn()
        assert o.program == "blastn"
        assert o.word_size == 11
        assert o.dust is True

    def test_blastp_defaults(self):
        o = BlastOptions.blastp()
        assert o.word_size == 3
        assert o.gap_open == 11 and o.gap_extend == 1
        assert o.dust is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(program="tblastn"),
            dict(word_size=1),
            dict(reward=0),
            dict(penalty=1),
            dict(gap_open=-1),
            dict(gap_extend=0),
            dict(evalue=0.0),
            dict(max_hits=0),
            dict(band_width=0),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BlastOptions(**kwargs)

    def test_blastp_large_word_rejected(self):
        with pytest.raises(ValueError):
            BlastOptions.blastp(word_size=7)

    def test_with_db_size(self):
        o = BlastOptions.blastn().with_db_size(10**9, 10**6)
        assert o.db_length_override == 10**9
        assert o.db_num_seqs_override == 10**6
        with pytest.raises(ValueError):
            o.with_db_size(0, 5)

    def test_options_frozen(self):
        o = BlastOptions.blastn()
        with pytest.raises(AttributeError):
            o.evalue = 1.0  # type: ignore[misc]


class TestEngineEdges:
    @pytest.fixture()
    def small_db(self, tmp_path):
        genome = random_genome(2000, seed_or_rng=60)
        alias = format_database([SeqRecord("ref", genome)], tmp_path, "edge", kind="dna")
        return DatabaseAlias.load(alias), genome

    def test_query_with_ambiguity_codes(self, small_db):
        alias, genome = small_db
        noisy = "N" * 5 + genome[500:800] + "NN"
        hits = make_engine(BlastOptions.blastn(evalue=1e-6)).search_block(
            [SeqRecord("noisy", noisy)], alias.open_partition(0)
        )
        assert hits
        assert hits[0].s_start >= 495

    def test_query_shorter_than_word_size(self, small_db):
        alias, _ = small_db
        hits = make_engine(BlastOptions.blastn()).search_block(
            [SeqRecord("tiny", "ACGTAC")], alias.open_partition(0)
        )
        assert hits == []

    def test_alternate_word_size(self, small_db):
        alias, genome = small_db
        query = [SeqRecord("q", genome[100:300])]
        for word in (8, 16):
            hits = make_engine(BlastOptions.blastn(word_size=word, evalue=1e-8)).search_block(
                query, alias.open_partition(0)
            )
            assert hits and hits[0].s_start == 100

    def test_alternate_scoring_scheme(self, small_db):
        alias, genome = small_db
        opts = BlastOptions.blastn(reward=2, penalty=-3, evalue=1e-8)
        hits = make_engine(opts).search_block(
            [SeqRecord("q", genome[400:700])], alias.open_partition(0)
        )
        assert hits
        assert hits[0].score == 2 * 300  # reward 2 per matched base

    def test_both_strand_hits_reported(self, small_db):
        from repro.bio.seq import reverse_complement

        alias, genome = small_db
        fwd = genome[100:400]
        rev = reverse_complement(genome[1200:1500])
        query = SeqRecord("chimera", fwd + "N" * 7 + rev)
        hits = make_engine(BlastOptions.blastn(evalue=1e-8)).search_block(
            [query], alias.open_partition(0)
        )
        strands = {h.strand for h in hits}
        assert strands == {1, -1}

    def test_dust_suppresses_low_complexity_query(self, small_db, tmp_path):
        alias_poly = DatabaseAlias.load(
            format_database([SeqRecord("polyA", "A" * 500)], tmp_path / "p", "poly", kind="dna")
        )
        query = [SeqRecord("qpoly", "A" * 300)]
        with_dust = make_engine(BlastOptions.blastn(dust=True, evalue=10)).search_block(
            query, alias_poly.open_partition(0)
        )
        without = make_engine(BlastOptions.blastn(dust=False, evalue=10)).search_block(
            query, alias_poly.open_partition(0)
        )
        assert with_dust == []
        assert without  # the masking, not the scoring, suppressed it

    def test_duplicate_query_ids_allowed_but_grouped(self, small_db):
        alias, genome = small_db
        q = SeqRecord("dup", genome[100:350])
        hits = make_engine(BlastOptions.blastn(evalue=1e-8, max_hits=5)).search_block(
            [q, q], alias.open_partition(0)
        )
        # Both copies hit; reporting groups by id with top-K applied per id.
        assert {h.query_id for h in hits} == {"dup"}
