"""Paged (out-of-core) aggregate: multi-round exchange correctness."""

import pytest

from repro.mpi import run_spmd
from repro.mrmpi import MapReduce


def _payload(i):
    return (f"key{i % 9}", b"v" * 50 + str(i).encode())


def _run(nprocs, exchange_bytes):
    def main(comm):
        mr = MapReduce(comm)
        mr.map_items(
            list(range(120)), lambda t, item, kv: kv.add(*_payload(item))
        )
        n = mr.aggregate(exchange_bytes=exchange_bytes)
        pairs = sorted((k, v) for k, v in mr.kv)
        keys_here = {k for k, _ in pairs}
        gathered = mr.comm.gather((keys_here, pairs), root=0)
        mr.close()
        return gathered

    return run_spmd(nprocs, main)[0]


@pytest.mark.parametrize("nprocs", [2, 4])
def test_tiny_exchange_budget_matches_single_round(nprocs):
    single = _run(nprocs, exchange_bytes=1 << 24)
    paged = _run(nprocs, exchange_bytes=256)  # forces many rounds
    # Same key placement and same pairs per rank, regardless of rounds.
    assert [keys for keys, _ in single] == [keys for keys, _ in paged]
    assert [pairs for _, pairs in single] == [pairs for _, pairs in paged]


def test_all_values_arrive_exactly_once():
    gathered = _run(3, exchange_bytes=200)
    all_pairs = [p for _keys, pairs in gathered for p in pairs]
    assert len(all_pairs) == 120
    assert len(set(all_pairs)) == 120
    # key disjointness across ranks
    key_sets = [keys for keys, _ in gathered]
    for i in range(len(key_sets)):
        for j in range(i + 1, len(key_sets)):
            assert not (key_sets[i] & key_sets[j])


def test_invalid_budget_rejected():
    def main(comm):
        mr = MapReduce(comm)
        mr.map(2, lambda i, kv: kv.add(i, i))
        with pytest.raises(ValueError):
            mr.aggregate(exchange_bytes=0)
        mr.close()
        return True

    assert run_spmd(1, main) == [True]


def test_uneven_rank_workloads_synchronize_rounds():
    """Ranks with very different KV volumes must still agree on rounds."""

    def main(comm):
        mr = MapReduce(comm)

        def mapper(itask, item, kv):
            # Rank executing task 0 emits 100 pairs; others emit 1.
            n = 100 if item == 0 else 1
            for i in range(n):
                kv.add(f"k{i % 5}", item * 1000 + i)

        mr.map_items([0, 1, 2], mapper, mapstyle=1)  # strided
        total = mr.aggregate(exchange_bytes=128)
        grand = mr.comm.allreduce(len(mr.kv))
        mr.close()
        return (total, grand)

    results = run_spmd(3, main)
    assert all(r[1] == 102 for r in results)
