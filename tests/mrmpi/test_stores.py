"""KeyValue / KeyMultiValue stores and the page spool."""

import numpy as np
import pytest

from repro.mrmpi.hashing import key_bytes, stable_hash
from repro.mrmpi.keymultivalue import KeyMultiValue, convert_kv_to_kmv
from repro.mrmpi.keyvalue import KeyValue
from repro.mrmpi.spool import PageSpool, approx_size


class TestPageSpool:
    def test_roundtrip_pages_in_order(self, tmp_path):
        spool = PageSpool(dir=str(tmp_path))
        spool.write_page([1, 2, 3])
        spool.write_page(["a", "b"])
        assert spool.npages == 2
        assert spool.nrecords == 5
        assert list(spool.iter_pages()) == [[1, 2, 3], ["a", "b"]]
        assert list(spool.iter_records()) == [1, 2, 3, "a", "b"]
        spool.close()

    def test_interleaved_write_read(self, tmp_path):
        spool = PageSpool(dir=str(tmp_path))
        spool.write_page([0])
        assert list(spool.iter_records()) == [0]
        spool.write_page([1])
        assert list(spool.iter_records()) == [0, 1]
        spool.close()

    def test_close_removes_file_and_blocks_use(self, tmp_path):
        import os

        spool = PageSpool(dir=str(tmp_path))
        path = spool.path
        spool.write_page([1])
        spool.close()
        assert not os.path.exists(path)
        with pytest.raises(ValueError):
            spool.write_page([2])

    def test_approx_size_scales_with_payload(self):
        assert approx_size(b"x" * 1000) > approx_size(b"x")
        assert approx_size(np.zeros(1000)) > approx_size(np.zeros(10))
        assert approx_size([b"x"] * 100) > approx_size([b"x"])


class TestKeyValue:
    def test_add_and_iterate_in_order(self):
        kv = KeyValue()
        for i in range(10):
            kv.add(f"k{i}", i * i)
        assert len(kv) == 10
        assert list(kv) == [(f"k{i}", i * i) for i in range(10)]
        assert not kv.out_of_core

    def test_spills_when_page_full_and_preserves_order(self, tmp_path):
        kv = KeyValue(pagesize=2048, spool_dir=str(tmp_path))
        pairs = [(f"key{i}", b"v" * 100) for i in range(100)]
        kv.add_multi(pairs)
        assert kv.out_of_core
        assert kv.spilled_pages > 1
        assert list(kv) == pairs

    def test_bad_key_type_rejected_at_add(self):
        kv = KeyValue()
        with pytest.raises(TypeError, match="unsupported key type"):
            kv.add([1, 2], "value")  # lists are not canonical keys

    def test_clear_resets_everything(self, tmp_path):
        kv = KeyValue(pagesize=256, spool_dir=str(tmp_path))
        kv.add_multi([(str(i), b"x" * 64) for i in range(50)])
        kv.clear()
        assert len(kv) == 0
        assert list(kv) == []
        assert not kv.out_of_core

    def test_invalid_pagesize(self):
        with pytest.raises(ValueError):
            KeyValue(pagesize=0)


class TestKeyBytesAndHash:
    def test_distinct_types_do_not_collide(self):
        # '1' as str, int, bytes and float must be four distinct keys
        keys = ["1", 1, b"1", 1.0]
        encodings = {key_bytes(k) for k in keys}
        assert len(encodings) == 4

    def test_tuple_encoding_is_injective_on_structure(self):
        assert key_bytes(("ab", "c")) != key_bytes(("a", "bc"))
        assert key_bytes((1, (2, 3))) != key_bytes((1, 2, 3))

    def test_stable_hash_is_deterministic_and_nonnegative(self):
        assert stable_hash("query_42") == stable_hash("query_42")
        assert stable_hash(b"abc") >= 0
        # Distinct realistic keys spread over buckets.
        buckets = {stable_hash(f"q{i}") % 8 for i in range(100)}
        assert len(buckets) == 8


class TestConvert:
    def test_groups_all_values_per_key(self):
        kv = KeyValue()
        for i in range(30):
            kv.add(f"k{i % 3}", i)
        kmv = convert_kv_to_kmv(kv, pagesize=1 << 20)
        got = {k: vs for k, vs in kmv}
        assert set(got) == {"k0", "k1", "k2"}
        for j in range(3):
            assert got[f"k{j}"] == list(range(j, 30, 3))

    def test_out_of_core_convert_matches_in_memory(self, tmp_path):
        pairs = [(f"k{i % 17}", f"v{i}") for i in range(500)]
        small = KeyValue(pagesize=1024, spool_dir=str(tmp_path))
        small.add_multi(pairs)
        assert small.out_of_core
        big = KeyValue(pagesize=1 << 24)
        big.add_multi(pairs)

        kmv_small = convert_kv_to_kmv(small, pagesize=1024, spool_dir=str(tmp_path), nbuckets=4)
        kmv_big = convert_kv_to_kmv(big, pagesize=1 << 24)
        assert dict(iter(kmv_small)) == dict(iter(kmv_big))

    def test_empty_kv_converts_to_empty_kmv(self):
        kmv = convert_kv_to_kmv(KeyValue(), pagesize=4096)
        assert len(kmv) == 0
        assert list(kmv) == []

    def test_kmv_spills(self, tmp_path):
        kmv = KeyMultiValue(pagesize=512, spool_dir=str(tmp_path))
        for i in range(40):
            kmv.add(f"k{i}", [b"v" * 50])
        assert kmv.out_of_core
        assert [(k, vs) for k, vs in kmv] == [(f"k{i}", [b"v" * 50]) for i in range(40)]
        assert kmv.nvalues == 40
