"""Columnar vs object plane parity under memory pressure.

Satellite of the columnar data-plane work: the same aggregate → convert →
reduce pipeline, run once per plane with a memsize tiny enough to force
multi-page spill on every rank, must produce identical results and leave
identical (i.e. zero) spill files behind — including when a rank is
crashed mid-run by the fault injector.
"""

import glob
import os

import numpy as np
import pytest

from repro.mpi import CrashRank, FaultPlan, LOR, RankFailure, run_spmd
from repro.mpi.runtime import SpmdJob
from repro.mrmpi import MapReduce, MapStyle, RecordSchema

NPROCS = 3
TINY = 512  # bytes: int64-keyed pairs spill after a handful of rows

SCHEMA = RecordSchema(key_dtype="S8", value_dtype=np.dtype("<i8"), key_kind="str")


def _pipeline(comm, schema, spool_dir, memsize=TINY):
    """aggregate → convert → reduce over a deterministic skewed workload."""
    # CHUNK: every rank maps, and per-rank MPI op counts are deterministic
    # (the crash test below injects at a measured op index).
    mr = MapReduce(
        comm, memsize=memsize, spool_dir=spool_dir, schema=schema, mapstyle=MapStyle.CHUNK
    )
    try:
        rng = np.random.default_rng(123)  # same stream on every rank
        keys = [f"k{rng.integers(37):02d}" for _ in range(900)]

        def mapper(itask, item, kv):
            for j in range(item * 90, item * 90 + 90):
                kv.add(keys[j], j)

        mr.map_items(list(range(10)), mapper)
        spilled = mr.kv.out_of_core
        mr.collate()
        mr.reduce(lambda k, vs, kv: kv.add(k, sum(int(v) for v in vs)))
        out = {}
        mr.scan_kv(lambda k, v: out.__setitem__(k, int(v)))
        per_rank = mr.comm.gather(out, root=0)
        any_spilled = mr.comm.allreduce(spilled, op=LOR)
        return per_rank, any_spilled
    finally:
        mr.close()


class TestPlaneParity:
    @pytest.mark.parametrize("nprocs", [1, 3, 4])
    def test_columnar_matches_object_under_spill(self, nprocs, tmp_path):
        obj_dir = tmp_path / "obj"
        col_dir = tmp_path / "col"
        os.makedirs(obj_dir)
        os.makedirs(col_dir)

        obj = run_spmd(nprocs, _pipeline, None, str(obj_dir))
        col = run_spmd(nprocs, _pipeline, SCHEMA, str(col_dir))

        obj_ranks, obj_spilled = obj[0]
        col_ranks, col_spilled = col[0]
        assert obj_spilled and col_spilled, "memsize did not force spilling"
        # identical results AND identical key placement, rank by rank
        assert col_ranks == obj_ranks
        merged = {}
        for d in obj_ranks:
            merged.update(d)
        expected_keys = 37
        assert len(merged) == expected_keys
        assert sum(merged.values()) == sum(range(900))
        # identical spill hygiene: nothing left behind on either plane
        assert glob.glob(str(obj_dir / "*")) == []
        assert glob.glob(str(col_dir / "*")) == []

    def test_multi_page_spill_actually_happens(self, tmp_path):
        """The fixture forces *multi*-page spill, not a borderline single page."""

        def probe(comm):
            mr = MapReduce(
                comm,
                memsize=TINY,
                spool_dir=str(tmp_path),
                schema=SCHEMA,
                mapstyle=MapStyle.CHUNK,
            )
            try:
                mr.map_items(
                    list(range(6)),
                    lambda i, item, kv: [kv.add(f"k{j%19:02d}", j) for j in range(200)],
                )
                return mr.kv.spilled_pages
            finally:
                mr.close()

        pages = run_spmd(NPROCS, probe)
        assert all(p > 1 for p in pages)


class TestCrashHygiene:
    """A rank crash mid-pipeline must not leak spill files on either plane."""

    @pytest.mark.parametrize("schema", [None, SCHEMA], ids=["object", "columnar"])
    def test_injected_crash_leaves_no_spill_files(self, schema, tmp_path):
        probe_dir = tmp_path / "probe"
        crash_dir = tmp_path / "crash"
        os.makedirs(probe_dir)
        os.makedirs(crash_dir)

        # Measure a clean run's op count, then crash rank 1 two-thirds in —
        # mid-exchange, while spilled state exists on disk.
        probe = SpmdJob(NPROCS, _pipeline, (schema, str(probe_dir)))
        probe.run()
        crash_at = (2 * probe.network.op_count(1)) // 3
        assert crash_at > 0
        assert glob.glob(str(probe_dir / "*")) == []

        plan = FaultPlan([CrashRank(rank=1, at_op=crash_at)])
        with pytest.raises(RankFailure):
            SpmdJob(NPROCS, _pipeline, (schema, str(crash_dir)), fault_plan=plan).run()
        assert glob.glob(str(crash_dir / "*")) == []
