"""The columnar KV data plane: schema, vectorized hashing, typed stores,
external sorts and sort-based grouping.

The contract under test throughout: every columnar operation must agree
with the object plane (or with plain ``sorted``/dict grouping) — the
columnar plane is a faster representation, never a different semantics.
"""

import glob

import numpy as np
import pytest

from repro.mrmpi.columnar import (
    ColumnarKeyMultiValue,
    ColumnarKeyValue,
    _v_to_arrays,
    convert_columnar,
    iter_sorted_batches,
    sort_kmv_columnar,
)
from repro.mrmpi.hashing import hash_key_column, stable_hash
from repro.mrmpi.schema import RAGGED_BYTES, RecordSchema

INT_SCHEMA = RecordSchema(key_dtype="S12", value_dtype=np.dtype("<i8"), key_kind="str")


def ragged_schema(key_dtype="S12", key_kind="str"):
    return RecordSchema(key_dtype=key_dtype, value_dtype=RAGGED_BYTES, key_kind=key_kind)


# --------------------------------------------------------------------------
# Vectorized hashing: must agree with the scalar stable hash bit for bit,
# or keys would land on different ranks in the two planes.
# --------------------------------------------------------------------------


class TestHashKeyColumn:
    def test_str_keys_match_scalar_hash(self):
        keys = ["", "a", "key7", "x" * 11, "Ünïcode", "the quick"]
        col = np.array([k.encode("utf-8") for k in keys], dtype="S20")
        hashed = hash_key_column(col, "str")
        for k, h in zip(keys, hashed):
            assert int(h) == stable_hash(k), k

    def test_bytes_keys_match_scalar_hash(self):
        keys = [b"", b"a", b"\x01\x02", b"deadbeef", b"\xff" * 9]
        col = np.array(keys, dtype="S9")
        hashed = hash_key_column(col, "bytes")
        for k, h in zip(keys, hashed):
            assert int(h) == stable_hash(k), k

    def test_int_keys_match_scalar_hash(self):
        keys = [0, 1, -1, 7, -7, 2**40, -(2**40), 2**62]
        col = np.array(keys, dtype=np.int64)
        hashed = hash_key_column(col, "int")
        for k, h in zip(keys, hashed):
            assert int(h) == stable_hash(k), k

    def test_float_keys_match_scalar_hash(self):
        keys = [0.0, -0.0, 1.5, -2.25, 1e300, 1e-300, 3.141592653589793]
        col = np.array(keys, dtype="<f8")
        hashed = hash_key_column(col, "float")
        for k, h in zip(keys, hashed):
            assert int(h) == stable_hash(k), k

    def test_varied_widths_in_one_column(self):
        # the masked per-byte sweep must stop at each key's own length
        keys = ["a", "ab", "abc", "abcd", "abcde"]
        col = np.array([k.encode() for k in keys], dtype="S5")
        hashed = hash_key_column(col, "str")
        assert len(set(int(h) for h in hashed)) == len(keys)
        for k, h in zip(keys, hashed):
            assert int(h) == stable_hash(k)


# --------------------------------------------------------------------------
# Schema validation
# --------------------------------------------------------------------------


class TestRecordSchema:
    def test_rejects_object_key_dtype(self):
        with pytest.raises((ValueError, TypeError)):
            RecordSchema(key_dtype=np.dtype(object), value_dtype=np.dtype("<i8"))

    def test_str_kind_requires_bytes_column(self):
        with pytest.raises(ValueError):
            RecordSchema(key_dtype="<i8", value_dtype=np.dtype("<i8"), key_kind="str")

    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError, match="wider"):
            INT_SCHEMA.encode_keys(["x" * 13])

    def test_rejects_trailing_nul_key(self):
        with pytest.raises(ValueError):
            INT_SCHEMA.encode_keys(["ok\x00"])


# --------------------------------------------------------------------------
# ColumnarKeyValue: round trips, batches, wire format, spilling
# --------------------------------------------------------------------------


class TestColumnarKeyValue:
    def test_scalar_and_batch_adds_round_trip(self):
        kv = ColumnarKeyValue(INT_SCHEMA)
        kv.add("one", 1)
        kv.add_batch(["two", "three"], [2, 3])
        kv.add("four", 4)
        assert len(kv) == 4
        assert list(kv) == [("one", 1), ("two", 2), ("three", 3), ("four", 4)]
        kv.close()

    def test_ragged_values_round_trip(self):
        kv = ColumnarKeyValue(ragged_schema())
        payloads = [b"", b"x", b"hello world", b"\x00\x01\x02"]
        for i, p in enumerate(payloads):
            kv.add(f"k{i}", p)
        assert [v for _, v in kv] == payloads
        kv.close()

    def test_wire_round_trip(self):
        src = ColumnarKeyValue(INT_SCHEMA)
        src.add_batch(["a", "b", "c"], [1, 2, 3])
        (karr, vcol) = next(iter(src.iter_batches()))
        dst = ColumnarKeyValue(INT_SCHEMA)
        n = dst.add_wire((karr,) + _v_to_arrays(vcol))
        assert n == 3
        assert list(dst) == list(src)
        src.close()
        dst.close()

    def test_spills_and_survives(self, tmp_path):
        kv = ColumnarKeyValue(INT_SCHEMA, pagesize=256, spool_dir=str(tmp_path))
        expected = [(f"k{i:04d}", i) for i in range(500)]
        for lo in range(0, 500, 50):
            chunk = expected[lo : lo + 50]
            kv.add_batch([k for k, _ in chunk], [v for _, v in chunk])
        assert kv.out_of_core
        assert kv.spilled_pages > 1
        assert list(kv) == expected
        kv.close()
        assert glob.glob(str(tmp_path / "*")) == []

    def test_exact_byte_accounting(self):
        kv = ColumnarKeyValue(INT_SCHEMA)
        kv.add_batch(["aa", "bb"], [1, 2])
        # 2 S12 keys + 2 int64 values, no estimates involved
        assert kv.nbytes == 2 * 12 + 2 * 8
        kv.close()


# --------------------------------------------------------------------------
# Sorted iteration: the external merge sort behind sort_keys / convert
# --------------------------------------------------------------------------


class TestSortedBatches:
    @pytest.mark.parametrize("pagesize", [1 << 20, 256])
    def test_sorted_and_stable(self, pagesize, tmp_path):
        kv = ColumnarKeyValue(INT_SCHEMA, pagesize=pagesize, spool_dir=str(tmp_path))
        rng = np.random.default_rng(11)
        keys = [f"k{rng.integers(40):02d}" for _ in range(600)]
        kv.add_batch(keys, list(range(600)))
        if pagesize == 256:
            assert kv.out_of_core

        out = []
        for karr, vcol in iter_sorted_batches(kv):
            for i in range(len(karr)):
                out.append((INT_SCHEMA.decode_key(karr[i]), int(vcol[i])))
        # stable: ties keep emission order, exactly like sorted() on pairs
        assert out == sorted(zip(keys, range(600)), key=lambda p: p[0])
        kv.close()


# --------------------------------------------------------------------------
# convert: sort-based grouping must build the same groups as dict grouping
# --------------------------------------------------------------------------


class TestConvertColumnar:
    @pytest.mark.parametrize("pagesize", [1 << 20, 256])
    def test_groups_match_dict_grouping(self, pagesize, tmp_path):
        kv = ColumnarKeyValue(INT_SCHEMA, pagesize=pagesize, spool_dir=str(tmp_path))
        rng = np.random.default_rng(5)
        pairs = [(f"g{rng.integers(25):02d}", i) for i in range(700)]
        kv.add_batch([k for k, _ in pairs], [v for _, v in pairs])

        expected: dict[str, list[int]] = {}
        for k, v in pairs:
            expected.setdefault(k, []).append(v)

        kmv = convert_columnar(kv, pagesize=pagesize, spool_dir=str(tmp_path))
        got = {k: [int(v) for v in vs] for k, vs in kmv}
        assert got == expected
        # sort-based convert emits keys in sorted order
        assert [k for k, _ in kmv] == sorted(expected)
        assert kmv.nvalues == 700
        kv.close()
        kmv.close()
        assert glob.glob(str(tmp_path / "*")) == []

    def test_group_split_across_pages(self, tmp_path):
        # one huge key dominating several spill pages must still come out
        # as a single group
        kv = ColumnarKeyValue(INT_SCHEMA, pagesize=128, spool_dir=str(tmp_path))
        kv.add_batch(["big"] * 300 + ["tiny"], list(range(301)))
        kmv = convert_columnar(kv, pagesize=128, spool_dir=str(tmp_path))
        got = {k: [int(v) for v in vs] for k, vs in kmv}
        assert got == {"big": list(range(300)), "tiny": [300]}
        kv.close()
        kmv.close()


# --------------------------------------------------------------------------
# KMV sorting
# --------------------------------------------------------------------------


class TestSortKmvColumnar:
    @pytest.mark.parametrize("pagesize", [1 << 20, 200])
    def test_orders_groups_by_key_fn(self, pagesize, tmp_path):
        kv = ColumnarKeyValue(INT_SCHEMA, pagesize=pagesize, spool_dir=str(tmp_path))
        rng = np.random.default_rng(9)
        pairs = [(f"q{rng.integers(30):02d}", i) for i in range(400)]
        kv.add_batch([k for k, _ in pairs], [v for _, v in pairs])
        kmv = convert_columnar(kv, pagesize=pagesize, spool_dir=str(tmp_path))

        by_reverse = sort_kmv_columnar(kmv, key=lambda k: k[::-1])
        got = [(k, [int(v) for v in vs]) for k, vs in by_reverse]
        expected: dict[str, list[int]] = {}
        for k, v in pairs:
            expected.setdefault(k, []).append(v)
        assert got == sorted(expected.items(), key=lambda p: p[0][::-1])
        kv.close()
        kmv.close()
        by_reverse.close()
        assert glob.glob(str(tmp_path / "*")) == []

    def test_non_comparable_rank_raises(self):
        kv = ColumnarKeyValue(INT_SCHEMA)
        kv.add_batch(["a", "b"], [1, 2])
        kmv = convert_columnar(kv, pagesize=1 << 20)
        with pytest.raises(TypeError):
            sort_kmv_columnar(kmv, key=lambda k: object())
        kv.close()
        kmv.close()


class TestColumnarKeyMultiValue:
    def test_group_batch_offsets_must_start_at_zero(self):
        kmv = ColumnarKeyMultiValue(INT_SCHEMA)
        keys = np.array([b"a"], dtype="S12")
        bad = np.array([1, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            kmv.add_group_batch(keys, bad, np.array([7, 8], dtype="<i8"))
        kmv.close()

    def test_ragged_groups_round_trip(self, tmp_path):
        kmv = ColumnarKeyMultiValue(ragged_schema(), pagesize=128, spool_dir=str(tmp_path))
        groups = {f"k{i}": [bytes([i]) * j for j in range(1, 4)] for i in range(40)}
        for k, vs in groups.items():
            kmv.add(k, vs)
        assert kmv.out_of_core
        assert {k: vs for k, vs in kmv} == groups
        assert kmv.nvalues == sum(len(v) for v in groups.values())
        kmv.close()
        assert glob.glob(str(tmp_path / "*")) == []
