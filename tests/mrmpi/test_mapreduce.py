"""The MapReduce driver: map styles, collate, reduce, gather, sorting."""

import collections

import pytest

from repro.mpi import run_spmd
from repro.mrmpi import MapReduce, MapStyle

WORDS = (
    "the quick brown fox jumps over the lazy dog the fox is quick and the dog is lazy"
).split()


def wordcount(comm, mapstyle, memsize=1 << 22):
    """Classic wordcount: one task per word chunk."""
    chunks = [WORDS[i : i + 3] for i in range(0, len(WORDS), 3)]
    mr = MapReduce(comm, mapstyle=mapstyle, memsize=memsize)

    def mapper(itask, chunk, kv):
        for word in chunk:
            kv.add(word, 1)

    def reducer(key, values, kv):
        kv.add(key, sum(values))

    mr.map_items(chunks, mapper)
    nunique = mr.collate()
    mr.reduce(reducer)
    counts = {}
    mr.scan_kv(lambda k, v: counts.__setitem__(k, v))
    total = mr.comm.gather(counts, root=0)
    mr.close()
    if comm.rank == 0:
        merged = {}
        for d in total:
            assert not (set(d) & set(merged)), "collate left a key on two ranks"
            merged.update(d)
        return merged, nunique
    return None, nunique


@pytest.mark.parametrize("mapstyle", [MapStyle.CHUNK, MapStyle.STRIDED, MapStyle.MASTER_WORKER])
@pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
def test_wordcount_all_styles_and_sizes(mapstyle, nprocs):
    results = run_spmd(nprocs, wordcount, mapstyle)
    merged, nunique = results[0]
    expected = collections.Counter(WORDS)
    assert merged == dict(expected)
    assert nunique == len(expected)


def test_out_of_core_wordcount_matches_in_memory(tmp_path):
    """A tiny memsize forces paging everywhere; results must be identical."""

    def main(comm):
        chunks = [WORDS[i : i + 2] for i in range(0, len(WORDS), 2)]
        mr = MapReduce(comm, memsize=256, spool_dir=str(tmp_path))

        def mapper(itask, chunk, kv):
            for word in chunk:
                kv.add(word, 1)

        mr.map_items(chunks, mapper)
        spilled = mr.kv is not None and mr.kv.out_of_core
        mr.collate()
        mr.reduce(lambda k, vs, kv: kv.add(k, sum(vs)))
        counts = {}
        mr.scan_kv(lambda k, v: counts.__setitem__(k, v))
        all_counts = mr.comm.gather(counts, root=0)
        any_spilled = mr.comm.allreduce(spilled, op=__import__("repro.mpi", fromlist=["LOR"]).LOR)
        mr.close()
        return (all_counts, any_spilled)

    results = run_spmd(3, main)
    merged = {}
    for d in results[0][0]:
        merged.update(d)
    assert merged == dict(collections.Counter(WORDS))


def test_master_worker_master_does_no_map_work():
    def main(comm):
        mr = MapReduce(comm, mapstyle=MapStyle.MASTER_WORKER)
        ran_on = []

        def mapper(itask, item, kv):
            ran_on.append(itask)
            kv.add("rank", comm.rank)

        mr.map_items(list(range(20)), mapper)
        local = sorted(ran_on)
        mr.close()
        return local

    results = run_spmd(4, main)
    assert results[0] == []  # master maps nothing
    all_tasks = sorted(t for r in results[1:] for t in r)
    assert all_tasks == list(range(20))


def test_master_worker_single_rank_runs_everything():
    def main(comm):
        mr = MapReduce(comm, mapstyle=MapStyle.MASTER_WORKER)
        seen = []
        mr.map_items(list(range(7)), lambda i, item, kv: seen.append(i))
        mr.close()
        return seen

    assert sorted(run_spmd(1, main)[0]) == list(range(7))


@pytest.mark.parametrize("style", [MapStyle.CHUNK, MapStyle.STRIDED])
def test_static_styles_cover_all_tasks_exactly_once(style):
    def main(comm):
        mr = MapReduce(comm, mapstyle=style)
        seen = []
        mr.map_items(list(range(23)), lambda i, item, kv: seen.append(i))
        mr.close()
        return seen

    results = run_spmd(4, main)
    all_tasks = sorted(t for r in results for t in r)
    assert all_tasks == list(range(23))
    if style is MapStyle.CHUNK:
        # chunk style assigns contiguous blocks
        for r in results:
            assert r == sorted(r)
            if len(r) > 1:
                assert r[-1] - r[0] == len(r) - 1


def test_map_int_variant():
    def main(comm):
        mr = MapReduce(comm)
        mr.map(10, lambda i, kv: kv.add(i % 2, i))
        n = mr.collate()
        mr.reduce(lambda k, vs, kv: kv.add(k, sorted(vs)))
        out = {}
        mr.scan_kv(lambda k, v: out.__setitem__(k, v))
        gathered = mr.comm.gather(out, root=0)
        mr.close()
        return (n, gathered)

    n, gathered = run_spmd(3, main)[0]
    assert n == 2
    merged = {}
    for d in gathered:
        merged.update(d)
    assert merged == {0: [0, 2, 4, 6, 8], 1: [1, 3, 5, 7, 9]}


def test_addflag_accumulates_over_iterations():
    """mrblast's outer loop maps repeatedly with addflag=True."""

    def main(comm):
        mr = MapReduce(comm)
        for batch in range(3):
            mr.map_items(
                [batch * 10 + i for i in range(4)],
                lambda i, item, kv: kv.add("all", item),
                addflag=True,
            )
        total, _ = mr.kv_stats()
        mr.collate()
        out = []
        mr.scan_kmv(lambda k, vs: out.extend(vs))
        everything = mr.comm.allreduce(out)
        mr.close()
        return (total, sorted(everything))

    total, everything = run_spmd(3, main)[0]
    assert total == 12
    assert everything == sorted([b * 10 + i for b in range(3) for i in range(4)])


def test_collate_key_locality_and_determinism():
    """Every key ends up on exactly one rank, at the stable-hash location."""

    def main(comm):
        mr = MapReduce(comm)
        mr.map_items(list(range(50)), lambda i, item, kv: kv.add(f"key{item % 10}", item))
        mr.collate()
        local_keys = []
        mr.scan_kmv(lambda k, vs: local_keys.append(k))
        gathered = mr.comm.gather(local_keys, root=0)
        mr.close()
        return gathered

    from repro.mrmpi.hashing import stable_hash

    gathered = run_spmd(4, main)[0]
    seen = {}
    for rank, keys in enumerate(gathered):
        for k in keys:
            assert k not in seen, f"key {k} on ranks {seen[k]} and {rank}"
            seen[k] = rank
            assert stable_hash(k) % 4 == rank
    assert set(seen) == {f"key{i}" for i in range(10)}


def test_gather_concentrates_pairs():
    def main(comm):
        mr = MapReduce(comm)
        mr.map_items(list(range(12)), lambda i, item, kv: kv.add(item, item), mapstyle=MapStyle.STRIDED)
        n_local = mr.gather(2)
        counts = mr.comm.gather(n_local, root=0)
        mr.close()
        return counts

    counts = run_spmd(4, main)[0]
    assert counts[2] == 0 and counts[3] == 0
    assert counts[0] + counts[1] == 12


def test_gather_invalid_nranks():
    def main(comm):
        mr = MapReduce(comm)
        mr.map(1, lambda i, kv: kv.add(0, 0))
        with pytest.raises(ValueError):
            mr.gather(0)
        mr.close()
        return True

    assert run_spmd(1, main) == [True]


def test_sort_keys_and_values():
    def main(comm):
        mr = MapReduce(comm)
        mr.map_items([3, 1, 2], lambda i, item, kv: kv.add(f"k{item}", -item))
        mr.gather(1)
        if comm.rank == 0:
            mr.sort_keys()
            keys = [k for k, _ in mr.kv]
            mr.sort_values()
            values = [v for _, v in mr.kv]
        else:
            keys, values = None, None
        mr.close()
        return (keys, values)

    keys, values = run_spmd(2, main)[0]
    assert keys == ["k1", "k2", "k3"]
    assert values == [-3, -2, -1]


def test_sort_multivalues():
    def main(comm):
        mr = MapReduce(comm)
        mr.map_items([5, 3, 9, 1], lambda i, item, kv: kv.add("k", item))
        mr.collate()
        mr.sort_multivalues()
        out = []
        mr.scan_kmv(lambda k, vs: out.append(vs))
        result = mr.comm.allreduce(out)
        mr.close()
        return result

    assert run_spmd(2, main)[0] == [[1, 3, 5, 9]]


def test_reduce_without_collate_raises():
    def main(comm):
        mr = MapReduce(comm)
        mr.map(2, lambda i, kv: kv.add(i, i))
        with pytest.raises(RuntimeError, match="KeyMultiValue"):
            mr.reduce(lambda k, vs, kv: None)
        mr.close()
        return True

    assert run_spmd(1, main) == [True]


def test_kv_stats_and_kmv_stats():
    def main(comm):
        mr = MapReduce(comm)
        mr.map_items(list(range(10)), lambda i, item, kv: kv.add(item % 3, item))
        total, peak = mr.kv_stats()
        mr.collate()
        nkeys, nvalues = mr.kmv_stats()
        mr.close()
        return (total, peak, nkeys, nvalues)

    for total, peak, nkeys, nvalues in run_spmd(3, main):
        assert total == 10
        assert peak <= 10
        assert nkeys == 3
        assert nvalues == 10


def test_timers_populated():
    def main(comm):
        mr = MapReduce(comm)
        mr.map(4, lambda i, kv: kv.add(i, i))
        mr.collate()
        mr.reduce(lambda k, vs, kv: kv.add(k, len(vs)))
        phases = set(mr.timers)
        mr.close()
        return phases

    phases = run_spmd(2, main)[0]
    assert {"map", "aggregate", "convert", "reduce"} <= phases


def test_map_kv_transforms_in_place():
    def main(comm):
        mr = MapReduce(comm, mapstyle=MapStyle.STRIDED)
        mr.map_items(list(range(12)), lambda t, item, kv: kv.add(item % 3, item))
        # Re-key every pair by value parity, doubling the values.
        n = mr.map_kv(lambda k, v, kv: kv.add(v % 2, v * 2), count=True)
        mr.collate()
        mr.reduce(lambda k, vs, kv: kv.add(k, sorted(vs)))
        out = {}
        mr.scan_kv(lambda k, v: out.__setitem__(k, v))
        gathered = mr.comm.gather(out, root=0)
        mr.close()
        return (n, gathered)

    n, gathered = run_spmd(3, main)[0]
    assert n == 12
    merged = {}
    for d in gathered:
        merged.update(d)
    assert merged == {
        0: [v * 2 for v in range(0, 12, 2)],
        1: [v * 2 for v in range(1, 12, 2)],
    }


def test_map_kv_requires_dataset():
    def main(comm):
        mr = MapReduce(comm)
        with pytest.raises(RuntimeError):
            mr.map_kv(lambda k, v, kv: None)
        mr.close()
        return True

    assert run_spmd(1, main) == [True]
