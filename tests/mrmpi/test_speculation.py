"""Scheduled dispatch on the real runtime: speculative re-execution and
degraded-mode completion of ``MapReduce.map_items``.

The stall/crash timings below are generous (hundreds of milliseconds vs
~10 ms units) so the scheduler decisions under test are forced, not raced.
"""

import time

import pytest

from repro.mpi.exceptions import DegradedRankLoss, MPIError
from repro.mpi.faultplan import FaultPlan
from repro.mpi.runtime import RetryPolicy, SpmdJob, run_spmd
from repro.mrmpi.mapreduce import MapReduce, MapStyle
from repro.sched import SpeculationPolicy

NPROCS = 4
BACKENDS = ["thread", "process"]


def _spec_job(comm):
    """12 cheap units; rank 1 stalls 0.8 s on its first unit."""
    mr = MapReduce(comm, mapstyle=MapStyle.MASTER_WORKER)
    first = [True]

    def mapper(itask, item, kv):
        if comm.rank == 1 and first[0]:
            first[0] = False
            time.sleep(0.8)
        else:
            time.sleep(0.01)
        kv.add(itask, item * 2)

    mr.map_items(list(range(12)), mapper,
                 speculation=SpeculationPolicy(factor=2.0, warmup=3))
    pairs = sorted(mr.kv) if mr.kv is not None else []
    sched = mr.sched
    mr.close()
    return pairs, sched


def _degraded_job(comm):
    mr = MapReduce(comm, mapstyle=MapStyle.MASTER_WORKER)

    def mapper(itask, item, kv):
        time.sleep(0.01)
        kv.add(itask, item)

    mr.map_items(list(range(12)), mapper, degraded=True)
    pairs = sorted(mr.kv) if mr.kv is not None else []
    sched = mr.sched
    size_after = mr.comm.size
    lost = mr.lost_ranks
    mr.close()
    return pairs, sched, size_after, lost


class TestSpeculation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stalled_unit_is_cloned_and_output_deduped(self, backend):
        results = run_spmd(NPROCS, _spec_job, backend=backend)
        merged = sorted(p for pairs, _ in results for p in pairs)
        # Exactly one copy of every unit survives, loser discarded by id.
        assert merged == [(i, i * 2) for i in range(12)]
        sched = results[0][1]
        assert sched is not None
        assert sched.completed == 12
        assert sched.speculated >= 1
        assert sched.wasted == sched.speculated  # every clone raced a winner
        assert not sched.degraded
        # Every rank got the same broadcast report.
        assert all(r[1] == sched for r in results)

    def test_speculation_ignored_off_master_worker(self):
        def job(comm):
            mr = MapReduce(comm, mapstyle=MapStyle.CHUNK)
            mr.map_items(list(range(8)), lambda i, item, kv: kv.add(i, item),
                         speculation=SpeculationPolicy())
            n = len(sorted(mr.kv))
            sched = mr.sched
            mr.close()
            return n, sched

        results = run_spmd(NPROCS, job)
        assert all(sched is None for _n, sched in results)
        assert sum(n for n, _ in results) == 8


class TestDegradedCompletion:
    def _crash_plan(self, job, rank=2):
        """Measure a clean run's op count and aim a crash at its middle."""
        probe = SpmdJob(NPROCS, job)
        probe.run()
        ops = probe.network.op_count(rank)
        return FaultPlan.parse(f"crash={rank}@{max(4, ops // 2)}", NPROCS)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_death_reassigns_and_completes(self, backend):
        plan = self._crash_plan(_degraded_job)
        results = run_spmd(NPROCS, _degraded_job, fault_plan=plan,
                           backend=backend)
        assert results[2] is None  # the dead rank has no result
        live = [r for r in results if r is not None]
        assert len(live) == NPROCS - 1
        merged = sorted(p for pairs, *_ in live for p in pairs)
        assert merged == [(i, i) for i in range(12)]
        for _pairs, sched, size_after, lost in live:
            assert sched.degraded
            assert sched.lost_ranks == (2,)
            assert sched.reassigned >= 1
            assert size_after == NPROCS - 1  # comm shrank around the corpse
            assert lost == (2,)

    def test_without_degraded_flag_crash_still_aborts(self):
        def job(comm):
            mr = MapReduce(comm, mapstyle=MapStyle.MASTER_WORKER)
            mr.map_items(list(range(12)),
                         lambda i, item, kv: (time.sleep(0.01), kv.add(i, item)))
            out = sorted(mr.kv)
            mr.close()
            return out

        plan = self._crash_plan(job)
        with pytest.raises(MPIError):
            SpmdJob(NPROCS, job, fault_plan=plan).run()

    def test_degraded_rank_loss_pickles_roundtrip(self):
        import pickle

        exc = DegradedRankLoss(3, "RankFailure(...)")
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, DegradedRankLoss)
        assert clone.rank == 3


class TestUnitHooks:
    """begin/commit/discard hooks stage side effects per unit."""

    def test_discarded_duplicate_never_commits(self):
        class Mapper:
            def __init__(self, comm):
                self.comm = comm
                self.committed = []
                self.discarded = []
                self.pending = None
                self.first = True

            def begin_unit(self, itask):
                self.pending = itask

            def commit_unit(self, itask):
                self.committed.append(itask)
                self.pending = None

            def discard_unit(self, itask):
                self.discarded.append(itask)
                self.pending = None

            def __call__(self, itask, item, kv):
                if self.comm.rank == 1 and self.first:
                    self.first = False
                    time.sleep(0.8)
                else:
                    time.sleep(0.01)
                kv.add(itask, item)

        def job(comm):
            mr = MapReduce(comm, mapstyle=MapStyle.MASTER_WORKER)
            mapper = Mapper(comm)
            mr.map_items(list(range(12)), mapper,
                         speculation=SpeculationPolicy(factor=2.0, warmup=3))
            out = sorted(mr.kv)
            sched = mr.sched
            mr.close()
            return out, mapper.committed, mapper.discarded, sched

        results = run_spmd(NPROCS, job)
        merged = sorted(p for pairs, *_ in results for p in pairs)
        assert merged == [(i, i) for i in range(12)]
        committed = sorted(u for _p, c, _d, _s in results for u in c)
        discarded = [u for _p, _c, d, _s in results for u in d]
        sched = results[0][3]
        # Accepted copies commit exactly once per unit; every wasted copy
        # was explicitly discarded on its worker.
        assert committed == list(range(12))
        assert len(discarded) == sched.wasted
        assert sched.wasted >= 1


class TestDecorrelatedJitter:
    def test_schedule_is_seeded_and_bounded(self):
        policy = RetryPolicy(max_attempts=8, backoff_base=0.1, backoff_max=2.0,
                             jitter="decorrelated", seed=7)
        a = [policy.backoff_schedule().next(i) for i in range(1, 8)]
        b = [policy.backoff_schedule().next(i) for i in range(1, 8)]
        assert a == b  # same seed, same schedule
        assert all(0.1 <= d <= 2.0 for d in a)

    def test_cap_applies_after_jitter(self):
        policy = RetryPolicy(max_attempts=50, backoff_base=0.5, backoff_max=1.0,
                             jitter="decorrelated", seed=1)
        sched = policy.backoff_schedule()
        delays = [sched.next(i) for i in range(1, 50)]
        assert max(delays) <= 1.0

    def test_none_jitter_matches_legacy_backoff(self):
        policy = RetryPolicy(max_attempts=6, backoff_base=0.25, backoff_max=10.0)
        sched = policy.backoff_schedule()
        for attempt in range(1, 6):
            assert sched.next(attempt) == policy.backoff(attempt)

    def test_rejects_unknown_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter="thundering-herd")
