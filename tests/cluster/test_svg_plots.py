"""SVG chart kit and figure plotting."""

import xml.dom.minidom

import pytest

from repro.figures.svg import LineChart, Series, _log_ticks, _nice_ticks


class TestSeries:
    def test_validation(self):
        with pytest.raises(ValueError):
            Series("bad", [1, 2], [1])
        with pytest.raises(ValueError):
            Series("empty", [], [])


class TestTicks:
    def test_nice_ticks_cover_range(self):
        ticks = _nice_ticks(0.0, 103.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 103.0
        assert len(ticks) >= 2
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform

    def test_log_ticks_powers_of_ten(self):
        ticks = _log_ticks(3.0, 5000.0)
        assert ticks == [10.0, 100.0, 1000.0]

    def test_log_ticks_degenerate_span(self):
        ticks = _log_ticks(40.0, 90.0)  # no powers of ten inside
        assert len(ticks) >= 2


class TestLineChart:
    def _chart(self, **kwargs):
        chart = LineChart("T", "x", "y", **kwargs)
        chart.add(Series("a", [1, 10, 100], [3.0, 2.0, 1.0]))
        chart.add(Series("b", [1, 10, 100], [1.0, 2.0, 3.0]))
        return chart

    def test_renders_valid_xml_with_series(self):
        svg = self._chart(x_log=True).render()
        doc = xml.dom.minidom.parseString(svg)
        assert len(doc.getElementsByTagName("polyline")) == 2
        texts = [t.firstChild.nodeValue for t in doc.getElementsByTagName("text")
                 if t.firstChild]
        assert "T" in texts and "a" in texts and "b" in texts

    def test_log_axis_rejects_nonpositive(self):
        chart = LineChart("T", "x", "y", y_log=True)
        with pytest.raises(ValueError):
            chart.add(Series("z", [1, 2], [0.0, 1.0]))

    def test_distinct_default_styles(self):
        chart = self._chart()
        assert chart.series[0].color != chart.series[1].color
        assert chart.series[0].marker != chart.series[1].marker

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            LineChart("T", "x", "y").render()

    def test_title_escaping(self):
        chart = LineChart("a < b & c", "x", "y")
        chart.add(Series("s", [1], [1]))
        svg = chart.render()
        assert "a &lt; b &amp; c" in svg
        xml.dom.minidom.parseString(svg)

    def test_write(self, tmp_path):
        path = self._chart().write(str(tmp_path / "c.svg"))
        assert open(path).read().startswith("<svg")


class TestPlotAll:
    def test_scaling_plots_written(self, tmp_path):
        # Only the cheap SVG figures (7/8 retrain SOMs; covered elsewhere).
        from repro.figures.plots import plot_fig3, plot_fig4, plot_fig5, plot_fig6

        for plotter in (plot_fig3, plot_fig4, plot_fig5, plot_fig6):
            path = plotter(str(tmp_path))
            xml.dom.minidom.parse(path)  # valid XML

    def test_fig7_images(self, tmp_path):
        from repro.figures.plots import plot_fig7

        ppm, pgm = plot_fig7(str(tmp_path), rows=8, cols=8, epochs=5)
        assert open(ppm, "rb").read(2) == b"P6"
        assert open(pgm, "rb").read(2) == b"P5"
