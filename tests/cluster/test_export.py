"""CSV export of figure data."""

import csv

from repro.figures.export import export_all


def test_export_all_writes_every_figure(tmp_path):
    paths = export_all(str(tmp_path))
    names = {p.rsplit("/", 1)[-1] for p in paths}
    assert names == {
        "fig3_blast_scaling.csv",
        "fig4_block_size.csv",
        "fig5_utilization.csv",
        "protein_scaling.csv",
        "fig6_som_scaling.csv",
        "htc_comparison.csv",
        "ablation_scheduling.csv",
    }
    # Every CSV parses and has data rows.
    for path in paths:
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert len(rows) >= 2, f"{path} has no data rows"
        assert all(len(r) == len(rows[0]) for r in rows)


def test_fig3_csv_contents(tmp_path):
    export_all(str(tmp_path))
    with open(tmp_path / "fig3_blast_scaling.csv", newline="") as fh:
        rows = list(csv.DictReader(fh))
    series = {r["series"] for r in rows}
    assert "80K" in series and "12K" in series
    eighty = [r for r in rows if r["series"] == "80K"]
    assert [int(r["cores"]) for r in eighty] == [32, 64, 128, 256, 512, 1024]
    walls = [float(r["wall_minutes"]) for r in eighty]
    assert walls == sorted(walls, reverse=True)
