"""The §II.A fault-tolerance trade-off model."""

import math

import pytest

from repro.cluster import nucleotide_workload, ranger, simulate_blast_run
from repro.cluster.faults import FaultModel, compare_fault_costs


class TestFaultModel:
    def test_survival_formula(self):
        m = FaultModel(failures_per_core_hour=1e-4)
        assert m.job_survival(1000, 1.0) == pytest.approx(math.exp(-0.1))
        assert m.job_survival(10, 0.0) == 1.0

    def test_survival_decreases_with_scale_and_length(self):
        m = FaultModel(failures_per_core_hour=1e-4)
        assert m.job_survival(1024, 5.0) < m.job_survival(1024, 1.0)
        assert m.job_survival(1024, 1.0) < m.job_survival(32, 1.0)

    def test_expected_attempts_geometric(self):
        m = FaultModel(failures_per_core_hour=1e-4)
        p = m.job_survival(1000, 2.0)
        assert m.expected_mpi_attempts(1000, 2.0) == pytest.approx(1.0 / p)

    def test_htc_overhead_small_and_linear(self):
        m = FaultModel(failures_per_core_hour=1e-4)
        assert m.expected_htc_overhead_fraction(0.5) == pytest.approx(5e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(failures_per_core_hour=-1)
        m = FaultModel()
        with pytest.raises(ValueError):
            m.job_survival(0, 1.0)
        with pytest.raises(ValueError):
            m.expected_htc_overhead_fraction(-1)


class TestComparison:
    @pytest.fixture(scope="class")
    def run(self):
        return simulate_blast_run(ranger(256), nucleotide_workload(40_000))

    def test_reliable_cluster_mpi_essentially_free(self, run):
        cmp = compare_fault_costs(run, FaultModel(failures_per_core_hour=1e-7))
        assert cmp.mpi_survival > 0.99
        assert cmp.mpi_overhead_fraction < 0.01
        assert cmp.htc_overhead_fraction < cmp.mpi_overhead_fraction + 1e-6

    def test_flaky_cluster_punishes_mpi_more_than_htc(self, run):
        cmp = compare_fault_costs(run, FaultModel(failures_per_core_hour=5e-3))
        assert cmp.mpi_survival < 0.9
        # MPI restarts whole jobs; HTC redoes single tasks.
        assert cmp.mpi_overhead_fraction > 10 * cmp.htc_overhead_fraction

    def test_base_core_hours_consistent(self, run):
        cmp = compare_fault_costs(run)
        assert cmp.base_core_hours == pytest.approx(run.core_seconds / 3600.0)
        assert cmp.mpi_expected_core_hours >= cmp.base_core_hours
        assert cmp.htc_expected_core_hours >= cmp.base_core_hours
