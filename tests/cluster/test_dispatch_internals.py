"""DES dispatch internals: schedulers, traces, derived metrics."""

import pytest

from repro.cluster import nucleotide_workload, ranger, simulate_blast_run
from repro.cluster.dispatch import _Scheduler


class TestSchedulerClasses:
    WL = nucleotide_workload(12_000)

    def test_master_worker_exhausts_in_order(self):
        s = _Scheduler(self.WL, "master_worker", workers=4, order="query_major")
        first = s.next_unit(0, None)
        assert first == (0, 0)
        count = 1
        while s.next_unit(0, None) is not None:
            count += 1
        assert count == self.WL.n_units
        assert s.next_unit(0, None) is None  # stays exhausted

    def test_static_partitioning_disjoint_and_complete(self):
        workers = 8
        s = _Scheduler(self.WL, "static", workers=workers)
        seen = set()
        for w in range(workers):
            while True:
                unit = s.next_unit(w, None)
                if unit is None:
                    break
                assert unit not in seen
                seen.add(unit)
                # ownership rule: partition p belongs to worker p % workers
                assert unit[1] % workers == w
        assert len(seen) == self.WL.n_units

    def test_affinity_feeds_current_partition_first(self):
        s = _Scheduler(self.WL, "affinity", workers=4)
        b, p = s.next_unit(0, None)
        # With a current partition, the scheduler keeps serving it.
        for _ in range(self.WL.n_blocks - 1):
            b2, p2 = s.next_unit(0, p)
            assert p2 == p
        # Partition drained: next call claims a different partition.
        _, p3 = s.next_unit(0, p)
        assert p3 != p

    def test_affinity_steals_when_claims_exhausted(self):
        small = nucleotide_workload(12_000)
        s = _Scheduler(small, "affinity", workers=4)
        drained = 0
        while s.next_unit(1, None) is not None:
            drained += 1
        assert drained == small.n_units

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            _Scheduler(self.WL, "round_robin", workers=2)


class TestSimResultMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate_blast_run(ranger(64), nucleotide_workload(12_000))

    def test_makespan_composition(self, result):
        assert result.makespan == pytest.approx(
            result.map_makespan + result.collate_seconds + result.reduce_seconds
        )

    def test_core_seconds_and_per_query(self, result):
        assert result.core_seconds == pytest.approx(result.makespan * 64)
        expected = result.core_seconds / 60.0 / 12_000
        assert result.core_minutes_per_query == pytest.approx(expected)

    def test_traces_cover_workers(self, result):
        assert len(result.traces) == result.cluster.workers
        for t in result.traces:
            assert t.io_seconds >= 0 and t.compute_seconds >= 0
            for start, io_end, end in t.intervals:
                assert start <= io_end <= end

    def test_intervals_non_overlapping_per_worker(self, result):
        for t in result.traces:
            spans = sorted((s, e) for s, _m, e in t.intervals)
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9

    def test_busy_plus_idle_bounded_by_makespan(self, result):
        for t in result.traces:
            assert t.io_seconds + t.compute_seconds <= result.map_makespan + 1e-6
