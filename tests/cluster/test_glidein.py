"""The glide-in (pilot-job) model from the paper's introduction."""

from dataclasses import replace

import pytest

from repro.cluster import (
    GlideinSpec,
    nucleotide_workload,
    ranger,
    simulate_blast_run,
    simulate_glidein_run,
)


class TestGlideinModel:
    def test_work_conservation(self):
        wl = nucleotide_workload(12_000)
        r = simulate_glidein_run(ranger(64), wl)
        assert sum(t.units for t in r.traces) == wl.n_units
        assert r.scheduler == "glidein"

    def test_determinism(self):
        wl = nucleotide_workload(12_000)
        a = simulate_glidein_run(ranger(64), wl)
        b = simulate_glidein_run(ranger(64), wl)
        assert a.makespan == b.makespan

    def test_zero_overhead_glidein_close_to_mrmpi(self):
        """With free scheduling, glide-in ~ master/worker (same work, and
        one extra worker since no rank is sacrificed as master)."""
        wl = nucleotide_workload(12_000)
        free = GlideinSpec(scheduler_latency=0.0, fork_overhead=0.0,
                           gateway_concurrency=10_000)
        gl = simulate_glidein_run(ranger(64), wl, free)
        mr = simulate_blast_run(ranger(64), wl)
        assert gl.map_makespan <= mr.map_makespan * 1.05

    def test_overhead_grows_as_units_shrink(self):
        """The paper-relevant contrast: fine-grained units punish glide-ins."""
        coarse = nucleotide_workload(40_000, queries_per_block=1000)
        fine = replace(
            nucleotide_workload(40_000, queries_per_block=200), name="fine"
        )
        cluster = ranger(128)
        ratio_coarse = (
            simulate_glidein_run(cluster, coarse).makespan
            / simulate_blast_run(cluster, coarse).makespan
        )
        ratio_fine = (
            simulate_glidein_run(cluster, fine).makespan
            / simulate_blast_run(cluster, fine).makespan
        )
        assert ratio_fine > ratio_coarse
        assert ratio_fine > 1.1

    def test_gateway_concurrency_limits_dispatch(self):
        wl = nucleotide_workload(12_000)
        narrow = simulate_glidein_run(
            ranger(256), wl, GlideinSpec(scheduler_latency=0.5, gateway_concurrency=4)
        )
        wide = simulate_glidein_run(
            ranger(256), wl, GlideinSpec(scheduler_latency=0.5, gateway_concurrency=512)
        )
        assert narrow.makespan > wide.makespan

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GlideinSpec(scheduler_latency=-1)
        with pytest.raises(ValueError):
            GlideinSpec(gateway_concurrency=0)
