"""The figures package: per-figure generators and the report builder."""

import numpy as np
import pytest

from repro.figures import format_table
from repro.figures.blast_scaling import (
    fig3_blast_scaling,
    fig4_block_size,
    protein_scaling_result,
)
from repro.figures.comparisons import ablation_scheduling, htc_comparison
from repro.figures.som_maps import fig7_rgb_clustering, fig8_highdim_umatrix
from repro.figures.som_scaling import fig6_som_scaling
from repro.figures.utilization import fig5_utilization

SMALL_CORES = (32, 128)


class TestFigureGenerators:
    def test_fig3_structure(self):
        series = fig3_blast_scaling(SMALL_CORES)
        assert set(series) == {"12K", "40K", "80K", "80K/2000-blocks"}
        for pts in series.values():
            assert [p.cores for p in pts] == list(SMALL_CORES)
            assert all(p.wall_minutes > 0 for p in pts)

    def test_fig4_superlinear_point(self):
        series = fig4_block_size(SMALL_CORES)
        small = series["80 blocks x 1000"]
        assert small[1].core_minutes_per_query < small[0].core_minutes_per_query
        assert small[0].cache_hit_rate < 0.05 < small[1].cache_hit_rate

    def test_fig5_trace_fields(self):
        trace = fig5_utilization(cores=256, n_bins=30)
        assert trace.minutes.shape == trace.utilization.shape == (30,)
        assert 0 < trace.plateau <= 1.0
        assert 0 < trace.taper_start_fraction <= 1.0

    def test_fig6_anchor(self):
        points = fig6_som_scaling((32, 1024))
        assert points[0].efficiency_vs_32 == pytest.approx(1.0)
        assert points[1].efficiency_vs_32 > 0.93

    def test_protein_result_fields(self):
        r = protein_scaling_result()
        assert r.wall_512_minutes > r.wall_1024_minutes
        assert r.extra_cost_percent == pytest.approx(
            (r.core_min_per_query_ratio - 1) * 100
        )

    def test_fig7_small_map(self):
        r = fig7_rgb_clustering(rows=8, cols=8, epochs=10)
        assert r.codebook.shape == (64, 3)
        assert r.neighbor_contrast < 0.5
        assert r.umatrix.shape == (8, 8)

    def test_fig8_small_map(self):
        r = fig8_highdim_umatrix(rows=8, cols=8, n_vectors=200, dim=50, epochs=5)
        assert r.codebook.shape == (64, 50)
        assert np.isfinite(r.umatrix).all()
        assert r.neighbor_contrast < 0.9

    def test_htc_comparison_fields(self):
        r = htc_comparison()
        assert r.mrmpi_wall_minutes > 0
        assert r.htc_longest_job_minutes > 0
        assert 0.3 < r.wall_ratio < 3.0

    def test_ablation_covers_all_schedulers(self):
        pts = ablation_scheduling(n_queries=12_000, cores_list=(64,))
        assert {p.scheduler for p in pts} == {
            "master_worker", "affinity", "static", "glidein",
        }
        without = ablation_scheduling(
            n_queries=12_000, cores_list=(64,), include_glidein=False
        )
        assert {p.scheduler for p in without} == {"master_worker", "affinity", "static"}


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equally wide

    def test_write_experiments_report(self, tmp_path):
        from repro.figures.report import write_experiments_report

        out = tmp_path / "exp.md"
        text = write_experiments_report(str(out))
        assert out.exists()
        assert "Figure 3" in text
        assert "Figure 6" in text
        assert "167%" in text or "167 %" in text
