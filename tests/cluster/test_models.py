"""Cluster performance models: machine specs, cache, workloads, DES runs."""

import numpy as np
import pytest

from repro.cluster import (
    BlastWorkloadModel,
    ClusterSpec,
    PartitionCache,
    SomScalingModel,
    nucleotide_workload,
    protein_workload,
    ranger,
    simulate_blast_run,
    simulate_som_run,
    utilization_curve,
)


class TestClusterSpec:
    def test_ranger_geometry(self):
        c = ranger(1024)
        assert c.n_nodes == 64
        assert c.cores == 1024
        assert c.workers == 1023

    def test_ranger_whole_node_allocation(self):
        with pytest.raises(ValueError):
            ranger(100)
        with pytest.raises(ValueError):
            ranger(8)

    def test_page_cache_capacity_crosses_db_size_at_128(self):
        """The paper's superlinear region: the 109 GB DB fits from 128 cores."""
        db_gb = nucleotide_workload(80_000).db_gb
        assert ranger(64).page_cache_gb < db_gb
        assert ranger(128).page_cache_gb >= db_gb

    def test_load_seconds_cached_much_faster(self):
        c = ranger(32)
        assert c.load_seconds(1.0, cached=True) < c.load_seconds(1.0, cached=False) / 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=1, app_ram_gb=32.0)


class TestPartitionCache:
    def test_miss_then_hit(self):
        cache = PartitionCache(10.0)
        assert cache.access(0, 1.0) is False
        assert cache.access(0, 1.0) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = PartitionCache(2.0)
        cache.access(0, 1.0)
        cache.access(1, 1.0)
        cache.access(0, 1.0)  # 0 now most recent
        cache.access(2, 1.0)  # evicts 1
        assert cache.access(0, 1.0) is True
        assert cache.access(1, 1.0) is False

    def test_cyclic_sweep_larger_than_capacity_always_misses(self):
        """LRU pathological case — the mechanism behind the 32/64-core regime."""
        cache = PartitionCache(5.0)
        for _sweep in range(3):
            for p in range(10):
                assert cache.access(p, 1.0) is False

    def test_oversized_item_never_cached(self):
        cache = PartitionCache(1.0)
        assert cache.access(0, 5.0) is False
        assert cache.access(0, 5.0) is False
        assert cache.used_gb == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionCache(-1.0)
        with pytest.raises(ValueError):
            PartitionCache(1.0).access(0, -2.0)


class TestWorkloadModel:
    def test_unit_times_deterministic_and_schedule_independent(self):
        wl = nucleotide_workload(12_000)
        a = wl.compute_seconds(3, 17)
        b = wl.compute_seconds(3, 17)
        assert a == b
        assert wl.compute_seconds(3, 18) != a

    def test_mean_scales_with_block_size(self):
        wl1 = nucleotide_workload(80_000, queries_per_block=1000)
        wl2 = nucleotide_workload(80_000, queries_per_block=2000)
        m1 = np.mean([wl1.compute_seconds(b, 0) for b in range(wl1.n_blocks)])
        m2 = np.mean([wl2.compute_seconds(b, 0) for b in range(wl2.n_blocks)])
        assert 1.6 < m2 / m1 < 2.6

    def test_heavy_tail_present(self):
        wl = nucleotide_workload(80_000)
        times = [wl.compute_seconds(b, p) for b in range(80) for p in range(20)]
        assert max(times) > 4 * np.mean(times)

    def test_counts(self):
        wl = nucleotide_workload(40_000)
        assert wl.n_blocks == 40
        assert wl.n_units == 40 * 109
        assert wl.total_queries == 40_000
        assert wl.db_gb == pytest.approx(109.0)

    def test_block_size_must_divide(self):
        with pytest.raises(ValueError):
            nucleotide_workload(12_345, queries_per_block=1000)

    def test_bounds_checked(self):
        wl = nucleotide_workload(12_000)
        with pytest.raises(ValueError):
            wl.compute_seconds(12, 0)
        with pytest.raises(ValueError):
            wl.compute_seconds(0, 109)

    def test_protein_more_cpu_bound_than_nucleotide(self):
        nt, aa = nucleotide_workload(80_000), protein_workload()
        assert aa.cpu_fraction > nt.cpu_fraction
        assert aa.partition_gb < nt.partition_gb


class TestBlastSimulation:
    def test_work_conservation(self):
        wl = nucleotide_workload(12_000)
        r = simulate_blast_run(ranger(64), wl)
        total_units = sum(t.units for t in r.traces)
        assert total_units == wl.n_units
        expected_compute = sum(
            wl.compute_seconds(b, p)
            for b in range(wl.n_blocks)
            for p in range(wl.n_partitions)
        )
        assert r.total_compute_seconds == pytest.approx(expected_compute, rel=1e-9)

    def test_determinism(self):
        wl = nucleotide_workload(12_000)
        r1 = simulate_blast_run(ranger(64), wl)
        r2 = simulate_blast_run(ranger(64), wl)
        assert r1.makespan == r2.makespan
        assert r1.cache_misses == r2.cache_misses

    def test_makespan_at_least_critical_path(self):
        wl = nucleotide_workload(12_000)
        r = simulate_blast_run(ranger(128), wl)
        longest_unit = max(
            wl.compute_seconds(b, p)
            for b in range(wl.n_blocks)
            for p in range(wl.n_partitions)
        )
        assert r.map_makespan >= longest_unit
        perfect = r.total_compute_seconds / r.cluster.workers
        assert r.map_makespan >= perfect

    def test_more_cores_never_slower(self):
        wl = nucleotide_workload(40_000)
        t = [simulate_blast_run(ranger(c), wl).makespan for c in (32, 128, 512)]
        assert t[0] > t[1] > t[2]

    def test_cache_regime_change_at_128_cores(self):
        wl = nucleotide_workload(40_000)
        cold = simulate_blast_run(ranger(64), wl)
        warm = simulate_blast_run(ranger(128), wl)
        assert cold.cache_hits == 0  # cyclic sweep > capacity: all misses
        assert warm.cache_hits > 0.9 * wl.n_units
        # The superlinear signature: I/O core-hours collapse.
        assert warm.total_io_seconds < cold.total_io_seconds / 10

    def test_paper_anchor_superlinear_and_1024_efficiency(self):
        """Fig. 4 anchors: 167 % at 128 cores, ~95 % at 1024 (vs 32)."""
        wl = nucleotide_workload(80_000)
        res = {c: simulate_blast_run(ranger(c), wl) for c in (32, 128, 1024)}
        eff128 = res[128].efficiency_vs(res[32])
        eff1024 = res[1024].efficiency_vs(res[32])
        assert 1.5 < eff128 < 1.9
        assert 0.85 < eff1024 < 1.05

    def test_block_size_crossover(self):
        """Fig. 4: big blocks win at low cores, small blocks at high cores."""
        wl1k = nucleotide_workload(80_000, queries_per_block=1000)
        wl2k = nucleotide_workload(80_000, queries_per_block=2000)
        low1 = simulate_blast_run(ranger(32), wl1k).core_minutes_per_query
        low2 = simulate_blast_run(ranger(32), wl2k).core_minutes_per_query
        high1 = simulate_blast_run(ranger(1024), wl1k).core_minutes_per_query
        high2 = simulate_blast_run(ranger(1024), wl2k).core_minutes_per_query
        assert low2 < low1
        assert high1 < high2

    def test_static_scheduler_worse_than_master_worker(self):
        wl = nucleotide_workload(40_000)
        dyn = simulate_blast_run(ranger(256), wl, scheduler="master_worker")
        static = simulate_blast_run(ranger(256), wl, scheduler="static")
        assert static.map_makespan > dyn.map_makespan

    def test_affinity_scheduler_cuts_reloads(self):
        wl = nucleotide_workload(12_000)
        fifo = simulate_blast_run(ranger(64), wl, scheduler="master_worker")
        aff = simulate_blast_run(ranger(64), wl, scheduler="affinity")
        assert aff.total_reloads < fifo.total_reloads / 5
        assert aff.makespan < fifo.makespan

    def test_protein_scaling_anchor(self):
        """§IV.A: ~6 % more core·min/query at 1024 vs 512; ~294 min wall."""
        pw = protein_workload()
        r512 = simulate_blast_run(ranger(512), pw)
        r1024 = simulate_blast_run(ranger(1024), pw)
        ratio = r1024.core_minutes_per_query / r512.core_minutes_per_query
        assert 1.0 < ratio < 1.12
        assert 240 < r1024.makespan / 60 < 350

    def test_efficiency_requires_same_workload(self):
        a = simulate_blast_run(ranger(32), nucleotide_workload(12_000))
        b = simulate_blast_run(ranger(32), nucleotide_workload(40_000))
        with pytest.raises(ValueError):
            a.efficiency_vs(b)

    def test_unknown_scheduler_and_order(self):
        wl = nucleotide_workload(12_000)
        with pytest.raises(ValueError):
            simulate_blast_run(ranger(32), wl, scheduler="magic")
        with pytest.raises(ValueError):
            simulate_blast_run(ranger(32), wl, order="diagonal")


class TestUtilizationTrace:
    def test_plateau_then_taper(self):
        """Fig. 5's shape: high flat utilisation, tapering tail."""
        r = simulate_blast_run(ranger(256), protein_workload(n_queries=30_000))
        t, u = utilization_curve(r, n_bins=20)
        assert len(u) == 20
        plateau = u[2:12].mean()
        assert plateau > 0.9
        assert u[-1] < 0.5 * plateau
        assert (u <= 1.0 + 1e-9).all()

    def test_curve_validation(self):
        r = simulate_blast_run(ranger(32), nucleotide_workload(12_000))
        with pytest.raises(ValueError):
            utilization_curve(r, n_bins=0)


class TestSomModel:
    def test_paper_anchor_96_percent_at_1024(self):
        m = SomScalingModel()
        base = simulate_som_run(ranger(32), m)
        top = simulate_som_run(ranger(1024), m)
        assert 0.93 < top.efficiency_vs(base) <= 1.0

    def test_near_linear_throughout(self):
        m = SomScalingModel()
        prev = None
        base = simulate_som_run(ranger(32), m)
        for cores in (32, 64, 128, 256, 512, 1024):
            r = simulate_som_run(ranger(cores), m)
            eff = r.efficiency_vs(base)
            assert eff > 0.9
            if prev is not None:
                assert r.makespan < prev
            prev = r.makespan

    def test_block_rows_80_identical_timings(self):
        """Fig. 6 note: 80-vector work units produced identical timings."""
        r40 = simulate_som_run(ranger(512), SomScalingModel(block_rows=40))
        r80 = simulate_som_run(ranger(512), SomScalingModel(block_rows=80))
        assert abs(r40.makespan - r80.makespan) / r40.makespan < 0.02

    def test_workload_counts(self):
        m = SomScalingModel()
        assert m.n_blocks == 2048
        assert m.map_units == 2500

    def test_validation(self):
        with pytest.raises(ValueError):
            SomScalingModel(n_vectors=0)
        with pytest.raises(ValueError):
            SomScalingModel(epochs=0)
