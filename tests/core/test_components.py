"""Core components: work items, mmap matrix, merge, CLIs, mapper caching."""

import numpy as np
import pytest

from repro.bio import SeqRecord, random_genome, split_fasta, write_fasta
from repro.core.mrblast.workitems import (
    WorkItem,
    build_work_items,
    index_query_blocks,
    load_query_blocks,
)
from repro.core.mrblast.mapper import exclude_self_hits
from repro.core.mrblast.merge import collect_rank_hits, merge_rank_outputs
from repro.core.mrsom.mmap_input import MatrixFile, write_matrix_file
from repro.blast.hsp import HSP
from repro.blast.tabular import write_tabular


class TestWorkItems:
    def test_partition_major_order(self):
        items = build_work_items(3, 2, order="partition_major")
        assert items[:3] == [WorkItem(0, 0), WorkItem(1, 0), WorkItem(2, 0)]
        assert len(items) == 6

    def test_query_major_order(self):
        items = build_work_items(2, 3, order="query_major")
        assert items[:3] == [WorkItem(0, 0), WorkItem(0, 1), WorkItem(0, 2)]

    def test_full_matrix_covered_once(self):
        items = build_work_items(5, 7)
        assert len(set(items)) == 35

    def test_validation(self):
        with pytest.raises(ValueError):
            build_work_items(0, 3)
        with pytest.raises(ValueError):
            build_work_items(2, 2, order="spiral")

    def test_load_query_blocks(self, tmp_path):
        recs = [SeqRecord(f"q{i}", random_genome(60, seed_or_rng=i)) for i in range(7)]
        paths = split_fasta(recs, tmp_path, seqs_per_block=3)
        blocks = load_query_blocks(paths)
        assert [len(b) for b in blocks] == [3, 3, 1]
        assert blocks[2][0].id == "q6"
        with pytest.raises(ValueError):
            load_query_blocks([])

    def test_index_query_blocks_dynamic_chunking(self, tmp_path):
        recs = [SeqRecord(f"q{i}", random_genome(50, seed_or_rng=i)) for i in range(10)]
        path = tmp_path / "all.fasta"
        write_fasta(recs, path)
        index, ranges = index_query_blocks(str(path), seqs_per_block=4)
        assert ranges == [(0, 4), (4, 8), (8, 10)]
        middle = index.load_range(*ranges[1])
        assert [r.id for r in middle] == ["q4", "q5", "q6", "q7"]
        with pytest.raises(ValueError):
            index_query_blocks(str(path), seqs_per_block=0)


class TestSelfHitFilter:
    def _hsp(self, qid, sid):
        return HSP(qid, sid, 100, 50.0, 1e-10, 0, 50, 0, 50, 50, 50)

    def test_excludes_parent_and_db_parent(self):
        assert exclude_self_hits("genome1/0-400", self._hsp("genome1/0-400", "genome1"))
        assert exclude_self_hits("genome1/0-400", self._hsp("genome1/0-400", "db_genome1"))

    def test_keeps_other_subjects(self):
        assert not exclude_self_hits("genome1/0-400", self._hsp("genome1/0-400", "genome2"))
        assert not exclude_self_hits("plainquery", self._hsp("plainquery", "db_genome1"))


class TestMatrixFile:
    def test_roundtrip_float64(self, tmp_path):
        data = np.random.default_rng(0).random((37, 5))
        path = write_matrix_file(tmp_path / "m.mat", data)
        m = MatrixFile(path)
        assert (m.n, m.dim) == (37, 5)
        np.testing.assert_allclose(m.rows(0, 37), data)
        np.testing.assert_allclose(m.rows(10, 20), data[10:20])

    def test_float32_dtype_preserved(self, tmp_path):
        data = np.random.default_rng(1).random((8, 3)).astype(np.float32)
        m = MatrixFile(write_matrix_file(tmp_path / "f32.mat", data))
        assert m.dtype == np.float32
        np.testing.assert_allclose(m.rows(0, 8), data.astype(np.float64))

    def test_work_units_cover_all_rows(self, tmp_path):
        data = np.zeros((103, 2))
        m = MatrixFile(write_matrix_file(tmp_path / "w.mat", data))
        units = m.work_units(40)
        assert units == [(0, 40), (40, 80), (80, 103)]
        with pytest.raises(ValueError):
            m.work_units(0)

    def test_bounds_and_bad_files(self, tmp_path):
        m = MatrixFile(write_matrix_file(tmp_path / "b.mat", np.zeros((4, 2))))
        with pytest.raises(IndexError):
            m.rows(0, 5)
        bad = tmp_path / "bad.mat"
        bad.write_bytes(b"NOTAMATRIX HEADER...")
        with pytest.raises(ValueError):
            MatrixFile(str(bad))

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_matrix_file(tmp_path / "x.mat", np.zeros(5))


class TestMerge:
    def _hsp(self, qid, sid="s", e=1e-5):
        return HSP(qid, sid, 100, 50.0, e, 0, 50, 0, 50, 50, 50)

    def test_duplicate_query_across_files_rejected(self, tmp_path):
        f1, f2 = tmp_path / "r0.tsv", tmp_path / "r1.tsv"
        write_tabular([self._hsp("qA")], f1)
        write_tabular([self._hsp("qA")], f2)
        with pytest.raises(ValueError, match="exactly one rank"):
            collect_rank_hits([str(f1), str(f2)])

    def test_missing_files_tolerated(self, tmp_path):
        f1 = tmp_path / "r0.tsv"
        write_tabular([self._hsp("qA")], f1)
        merged = collect_rank_hits([str(f1), str(tmp_path / "nope.tsv")])
        assert set(merged) == {"qA"}

    def test_unknown_query_in_order_rejected(self, tmp_path):
        f1 = tmp_path / "r0.tsv"
        write_tabular([self._hsp("mystery")], f1)
        with pytest.raises(ValueError, match="unknown queries"):
            merge_rank_outputs([str(f1)], str(tmp_path / "out.tsv"), query_order=["qA"])

    def test_empty_inputs_create_empty_output(self, tmp_path):
        out = tmp_path / "merged.tsv"
        n = merge_rank_outputs([], str(out))
        assert n == 0
        assert out.exists() and out.read_text() == ""


class TestClis:
    def test_mrblast_cli_end_to_end(self, tmp_path, capsys):
        from repro.bio import synthetic_community, synthetic_nt_database, shred_records
        from repro.blast import format_database
        from repro.core.mrblast.cli import main

        com = synthetic_community(n_genomes=2, genome_length=1500, seed=5)
        db = synthetic_nt_database(com, n_decoys=1, decoy_length=800, seed=6)
        alias = format_database(db, tmp_path / "db", "clidb", kind="dna")
        reads = list(shred_records(com.genomes))[:4]
        qpaths = split_fasta(reads, tmp_path / "queries", seqs_per_block=2)

        rc = main([
            "--db", str(alias), "--queries", *map(str, qpaths),
            "--np", "2", "--out", str(tmp_path / "out"), "--evalue", "1e-5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert (tmp_path / "out" / "hits.rank0000.tsv").exists()

    def test_mrsom_cli_end_to_end(self, tmp_path, capsys):
        from repro.core.mrsom.cli import main

        data = np.random.default_rng(2).random((80, 4))
        matrix = write_matrix_file(tmp_path / "v.mat", data)
        out = tmp_path / "cb.npy"
        rc = main([
            "--input", str(matrix), "--rows", "4", "--cols", "4",
            "--epochs", "3", "--np", "2", "--block-rows", "16",
            "--out", str(out),
        ])
        assert rc == 0
        codebook = np.load(out)
        assert codebook.shape == (16, 4)
        assert "trained 4x4 SOM" in capsys.readouterr().out


class TestMrSomErrorTracking:
    def test_error_history_recorded_and_decreasing(self, tmp_path):
        from repro.core import MrSomConfig, mrsom_spmd
        from repro.som.codebook import SOMGrid

        data = np.random.default_rng(8).random((300, 6))
        path = write_matrix_file(tmp_path / "t.mat", data)
        config = MrSomConfig(
            matrix_path=str(path), grid=SOMGrid(6, 6), epochs=8,
            block_rows=50, track_error=True,
        )
        results = mrsom_spmd(3, config)
        history = results[0].error_history
        assert history is not None and len(history) == 8
        assert history[-1] < history[0]
        assert all(r.error_history is None for r in results[1:])

    def test_no_tracking_by_default(self, tmp_path):
        from repro.core import MrSomConfig, mrsom_spmd
        from repro.som.codebook import SOMGrid

        data = np.random.default_rng(9).random((100, 4))
        path = write_matrix_file(tmp_path / "n.mat", data)
        config = MrSomConfig(matrix_path=str(path), grid=SOMGrid(4, 4), epochs=2)
        results = mrsom_spmd(2, config)
        assert all(r.error_history is None for r in results)


class TestDynamicCli:
    def test_mrblast_cli_dynamic_mode(self, tmp_path, capsys):
        from repro.bio import synthetic_community, synthetic_nt_database, shred_records
        from repro.bio.fasta import write_fasta as wf
        from repro.blast import format_database
        from repro.core.mrblast.cli import main

        com = synthetic_community(n_genomes=2, genome_length=1500, seed=15)
        db = synthetic_nt_database(com, n_decoys=1, decoy_length=800, seed=16)
        alias = format_database(db, tmp_path / "db", "dyndb", kind="dna")
        reads = list(shred_records(com.genomes))[:4]
        fasta = tmp_path / "q.fasta"
        wf(reads, fasta)

        rc = main([
            "--db", str(alias), "--query-fasta", str(fasta),
            "--np", "2", "--out", str(tmp_path / "out"),
            "--evalue", "1e-5", "--target-unit-seconds", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dynamic chunking chose" in out
        assert (tmp_path / "out" / "hits.rank0000.tsv").exists()

    def test_queries_and_fasta_mutually_exclusive(self, tmp_path):
        from repro.core.mrblast.cli import main

        with pytest.raises(SystemExit):
            main(["--db", "x", "--queries", "a", "--query-fasta", "b"])
