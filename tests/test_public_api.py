"""Public-API hygiene: every module imports, __all__ resolves, docs exist."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


def test_package_tree_is_nontrivial():
    assert len(MODULES) > 50


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} has no module docstring"


@pytest.mark.parametrize(
    "name", [m for m in MODULES if not m.rsplit(".", 1)[-1].startswith("_")]
)
def test_all_exports_resolve_and_are_documented(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{name}.{symbol} has no docstring"


def test_top_level_packages_reexport_their_surface():
    import repro.blast
    import repro.cluster
    import repro.core
    import repro.mpi
    import repro.mrmpi
    import repro.som

    # Spot-check the names the README quickstart relies on.
    for pkg, names in [
        (repro.mpi, ["run_spmd", "Comm", "MPIPool"]),
        (repro.mrmpi, ["MapReduce", "MapStyle"]),
        (repro.blast, ["BlastOptions", "make_engine", "format_database",
                       "render_pairwise", "BlastxEngine", "TblastnEngine"]),
        (repro.som, ["BatchSOM", "SOMGrid", "umatrix", "classify"]),
        (repro.core, ["MrBlastConfig", "mrblast_spmd", "MrSomConfig",
                      "mrsom_spmd", "DynamicChunkConfig"]),
        (repro.cluster, ["ranger", "simulate_blast_run", "simulate_som_run",
                         "FaultModel"]),
    ]:
        for n in names:
            assert hasattr(pkg, n), f"{pkg.__name__} does not export {n}"
