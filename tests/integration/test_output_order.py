"""Per-rank output files preserve the original query order (paper §III.A)."""

import pytest

from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.blast import BlastOptions, format_database
from repro.blast.tabular import parse_tabular
from repro.core import MrBlastConfig, mrblast_spmd


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("order")
    com = synthetic_community(n_genomes=3, genome_length=2000, seed=51)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1200, seed=52)
    alias = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1400)
    reads = list(shred_records(com.genomes))[:10]
    blocks = [reads[i : i + 2] for i in range(0, len(reads), 2)]
    results = mrblast_spmd(3, MrBlastConfig(
        alias_path=str(alias), query_blocks=blocks,
        options=BlastOptions.blastn(evalue=1e-4),
        output_dir=str(tmp / "out"),
    ))
    return reads, results


def test_queries_in_each_rank_file_follow_input_order(run):
    reads, results = run
    position = {r.id: i for i, r in enumerate(reads)}
    saw_hits = False
    for r in results:
        qids = []
        for h in parse_tabular(r.output_path):
            if not qids or qids[-1] != h.query_id:
                qids.append(h.query_id)
        if qids:
            saw_hits = True
        assert len(set(qids)) == len(qids), "a query's hits must be contiguous"
        indices = [position[q] for q in qids]
        assert indices == sorted(indices), f"rank {r.rank} file out of input order"
    assert saw_hits


def test_hits_within_each_query_evalue_sorted(run):
    _, results = run
    for r in results:
        current_q, last_e = None, None
        for h in parse_tabular(r.output_path):
            if h.query_id != current_q:
                current_q, last_e = h.query_id, h.evalue
            else:
                assert h.evalue >= last_e
                last_e = h.evalue
