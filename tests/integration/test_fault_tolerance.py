"""End-to-end fault tolerance: crash → detect → back off → resume.

The acceptance bar for the robustness subsystem:

- a seeded rank crash mid-run, supervised, completes with output
  bit-identical to a fault-free run (mrblast HSPs, mrsom codebook);
- a work unit that fails on every attempt is quarantined after its failure
  budget instead of wedging the job;
- injected spill files never leak, even when a rank crashes mid-iteration;
- the same fault plan replayed over the same program yields the same
  event trace.

All runs use ``MapStyle.CHUNK`` so per-rank MPI op counts are deterministic
and op-indexed fault events land at the same program point every time.
"""

import glob
import json
import os

import numpy as np
import pytest

from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.blast import BlastOptions, format_database
from repro.cluster import RestartObservation, validate_restart_overhead
from repro.core import (
    MrBlastConfig,
    MrSomConfig,
    mrblast_spmd,
    mrblast_supervised,
    mrsom_spmd,
    mrsom_supervised,
    run_mrblast,
)
from repro.core.mrsom.mmap_input import write_matrix_file
from repro.core.mrblast.merge import collect_rank_hits
from repro.mpi import CrashRank, FaultPlan, RankFailure, RetryPolicy
from repro.mpi.runtime import SpmdJob
from repro.mrmpi.mapreduce import MapStyle
from repro.som.codebook import SOMGrid

NPROCS = 3
FAST_RETRY = RetryPolicy(max_attempts=4, backoff_base=0.0)


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("ft")
    com = synthetic_community(n_genomes=3, genome_length=2000, seed=81)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1200, seed=82)
    alias = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1400)
    reads = list(shred_records(com.genomes))[:12]
    blocks = [reads[i : i + 3] for i in range(0, len(reads), 3)]  # 4 blocks
    return str(alias), blocks, BlastOptions.blastn(evalue=1e-4, max_hits=10)


def _config(workload, out, **overrides):
    alias, blocks, options = workload
    kwargs = dict(
        alias_path=alias,
        query_blocks=blocks,
        options=options,
        output_dir=str(out),
        blocks_per_iteration=2,  # 4 blocks -> 2 outer iterations
        mapstyle=MapStyle.CHUNK,  # deterministic op counts
    )
    kwargs.update(overrides)
    return MrBlastConfig(**kwargs)


def _signatures(merged):
    return sorted(
        (qid, h.subject_id, h.q_start, h.s_start, round(h.bit_score, 1))
        for qid, hits in merged.items()
        for h in hits
    )


def _op_counts(config):
    """Per-rank MPI op counts of a clean run (CHUNK makes them stable)."""
    job = SpmdJob(NPROCS, run_mrblast, (config,))
    job.run()
    return [job.network.op_count(r) for r in range(NPROCS)]


@pytest.fixture(scope="module")
def mid_iter2_op(workload, tmp_path_factory):
    """An op index for rank 1 that lands inside outer iteration 2.

    Measured, not guessed: halfway between rank 1's op count after one
    committed iteration and after the full run.
    """
    tmp = tmp_path_factory.mktemp("probe")
    full = _op_counts(_config(workload, tmp / "full"))
    half = _op_counts(_config(workload, tmp / "half", stop_after_iterations=1))
    assert half[1] < full[1]
    return (half[1] + full[1]) // 2


class TestSupervisedBlastResume:
    def test_crash_resume_is_bit_identical(self, workload, tmp_path, mid_iter2_op):
        clean = mrblast_spmd(NPROCS, _config(workload, tmp_path / "clean"))
        clean_sig = _signatures(collect_rank_hits([r.output_path for r in clean]))

        plan = FaultPlan([CrashRank(rank=1, at_op=mid_iter2_op)])
        outcome = mrblast_supervised(
            NPROCS,
            _config(workload, tmp_path / "faulty"),
            fault_plan=plan,
            retry=FAST_RETRY,
        )
        assert outcome.succeeded
        assert outcome.retries == 1
        assert [a.outcome for a in outcome.attempts] == ["rank_failure", "ok"]
        assert outcome.fault_trace == (("crash", 1, mid_iter2_op),)

        results = outcome.results
        # The crash hit iteration 2, so iteration 1 was already committed
        # on every rank and the relaunch resumed rather than restarted.
        assert all(r.resumed_from_iteration >= 1 for r in results)
        assert all(r.faults_injected == 1 and r.retries == 1 for r in results)
        faulty_sig = _signatures(collect_rank_hits([r.output_path for r in results]))
        assert faulty_sig == clean_sig

    def test_trace_reproducible_across_runs(self, workload, tmp_path, mid_iter2_op):
        traces = []
        for tag in ("a", "b"):
            plan = FaultPlan([CrashRank(rank=1, at_op=mid_iter2_op)])
            mrblast_supervised(
                NPROCS,
                _config(workload, tmp_path / tag),
                fault_plan=plan,
                retry=FAST_RETRY,
            )
            traces.append(plan.trace())
        assert traces[0] == traces[1] != ()

    def test_restart_overhead_matches_analytic_model(self, workload, tmp_path, mid_iter2_op):
        """Redone work from the injected crash lands where the model says."""
        clean = mrblast_spmd(NPROCS, _config(workload, tmp_path / "model-clean"))
        useful = sum(r.units_processed for r in clean)
        units_per_checkpoint = useful / 2  # 2 outer iterations = 2 checkpoints

        plan = FaultPlan([CrashRank(rank=1, at_op=mid_iter2_op)])
        outcome = mrblast_supervised(
            NPROCS,
            _config(workload, tmp_path / "model-faulty"),
            fault_plan=plan,
            retry=FAST_RETRY,
        )
        executed = useful + sum(r.units_processed for r in outcome.results)
        # outcome.results is the successful (resumed) attempt; the crashed
        # attempt executed the remaining units: total = clean + resumed.
        validation = validate_restart_overhead(
            RestartObservation(
                units_useful=useful,
                units_executed=executed,
                n_failures=1,
                units_per_checkpoint=units_per_checkpoint,
            )
        )
        assert validation.observed >= 0
        assert validation.within(intervals=1.0)


class TestSupervisedSomResume:
    @pytest.fixture(scope="class")
    def matrix(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("som")
        rng = np.random.default_rng(5)
        path = os.path.join(tmp, "vectors.mat")
        write_matrix_file(path, rng.normal(size=(240, 8)))
        return path

    def _som_config(self, matrix, **overrides):
        kwargs = dict(
            matrix_path=matrix,
            grid=SOMGrid(6, 5),
            epochs=4,
            block_rows=40,
            mapstyle=MapStyle.CHUNK,
            seed=3,
        )
        kwargs.update(overrides)
        return MrSomConfig(**kwargs)

    def test_checkpoint_then_resume_is_bit_identical(self, matrix, tmp_path):
        clean = mrsom_spmd(NPROCS, self._som_config(matrix))
        ckdir = str(tmp_path / "ck")
        partial = mrsom_spmd(
            NPROCS,
            self._som_config(matrix, checkpoint_dir=ckdir, stop_after_epochs=2),
        )
        assert not np.array_equal(partial[0].codebook, clean[0].codebook)
        resumed = mrsom_spmd(
            NPROCS, self._som_config(matrix, checkpoint_dir=ckdir, resume=True)
        )
        assert resumed[0].resumed_from_epoch == 2
        assert np.array_equal(resumed[0].codebook, clean[0].codebook)

    def test_supervised_crash_recovers_same_codebook(self, matrix, tmp_path):
        clean = mrsom_spmd(NPROCS, self._som_config(matrix))
        plan = FaultPlan([CrashRank(rank=1, at_op=10)])
        outcome = mrsom_supervised(
            NPROCS,
            self._som_config(matrix, checkpoint_dir=str(tmp_path / "ck2")),
            fault_plan=plan,
            retry=FAST_RETRY,
        )
        assert outcome.succeeded
        assert outcome.retries == 1
        assert all(r.retries == 1 and r.faults_injected == 1 for r in outcome.results)
        for r in outcome.results:
            assert np.array_equal(r.codebook, clean[0].codebook)


class TestPoisonQuarantine:
    def test_poison_unit_is_quarantined_after_budget(self, workload, tmp_path):
        def injector(item):
            if item.block_index == 0 and item.partition_index == 0:
                raise RuntimeError("poisoned unit")

        out = tmp_path / "poison"
        outcome = mrblast_supervised(
            NPROCS,
            _config(
                workload,
                out,
                unit_fault_injector=injector,
                poison_attempts=2,
            ),
            retry=FAST_RETRY,
        )
        # Attempts 1 and 2 die on the unit; attempt 3 quarantines it.
        assert outcome.succeeded
        assert outcome.retries == 2
        assert [a.outcome for a in outcome.attempts] == ["error", "error", "ok"]
        assert sum(r.quarantined_units for r in outcome.results) == 1
        with open(out / "poison.json") as fh:
            ledger = json.load(fh)
        assert ledger["b0:p0"]["failures"] == 2

        # The job reports the skip; everything else was still searched.
        merged = collect_rank_hits([r.output_path for r in outcome.results])
        clean = mrblast_spmd(NPROCS, _config(workload, tmp_path / "poison-clean"))
        clean_sig = _signatures(collect_rank_hits([r.output_path for r in clean]))
        assert set(_signatures(merged)) < set(clean_sig)

    def test_fresh_run_clears_stale_poison(self, workload, tmp_path):
        out = tmp_path / "stale"
        os.makedirs(out)
        with open(out / "poison.json", "w") as fh:
            json.dump({"b0:p0": {"failures": 99, "error": "old"}}, fh)
        results = mrblast_spmd(NPROCS, _config(workload, out))
        assert sum(r.quarantined_units for r in results) == 0
        assert not os.path.exists(out / "poison.json")


class TestSpoolHygiene:
    def test_no_spill_files_leak_after_injected_crash(self, workload, tmp_path):
        spool_dir = tmp_path / "spool"
        os.makedirs(spool_dir)
        # Probe a clean run first: the crash index must land mid-run, and
        # the op count depends on how many exchange rounds the data plane
        # needs, so it is measured rather than hardcoded.
        probe_spool = tmp_path / "probe-spool"
        os.makedirs(probe_spool)
        probe_cfg = _config(
            workload,
            tmp_path / "probe",
            memsize=2048,
            spool_dir=str(probe_spool),
        )
        probe = SpmdJob(NPROCS, run_mrblast, (probe_cfg,))
        probe.run()
        crash_at = (2 * probe.network.op_count(1)) // 3
        assert crash_at > 0

        config = _config(
            workload,
            tmp_path / "crashy",
            memsize=2048,  # force spills
            spool_dir=str(spool_dir),
        )
        with pytest.raises(RankFailure):
            SpmdJob(NPROCS, run_mrblast, (config,), fault_plan=FaultPlan(
                [CrashRank(rank=1, at_op=crash_at)]
            )).run()
        assert glob.glob(str(spool_dir / "*")) == []

    def test_no_spill_files_leak_after_clean_run(self, workload, tmp_path):
        spool_dir = tmp_path / "spool-clean"
        os.makedirs(spool_dir)
        mrblast_spmd(
            NPROCS,
            _config(workload, tmp_path / "ok", memsize=2048, spool_dir=str(spool_dir)),
        )
        assert glob.glob(str(spool_dir / "*")) == []


class TestConfigValidation:
    def test_mrblast_rejects_missing_alias(self, workload, tmp_path):
        cfg = _config(workload, tmp_path / "x", alias_path="/nonexistent/db.pal.json")
        with pytest.raises(ValueError, match="alias"):
            cfg.validate()

    def test_mrblast_rejects_unwritable_output_dir(self, workload, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        cfg = _config(workload, blocker / "out")
        with pytest.raises(ValueError, match="writable|directory"):
            cfg.validate()

    def test_mrblast_validation_happens_before_ranks_spawn(self, workload, tmp_path):
        cfg = _config(workload, tmp_path / "y", alias_path="/nonexistent/db.pal.json")
        with pytest.raises(ValueError):
            mrblast_spmd(NPROCS, cfg)

    def test_mrsom_rejects_missing_matrix(self):
        cfg = MrSomConfig(matrix_path="/nonexistent.mat", grid=SOMGrid(4, 4))
        with pytest.raises(ValueError, match="matrix_path"):
            cfg.validate()

    def test_mrsom_rejects_resume_without_checkpoint_dir(self, tmp_path):
        path = os.path.join(tmp_path, "m.mat")
        write_matrix_file(path, np.zeros((10, 4)) + 1.0)
        cfg = MrSomConfig(matrix_path=path, grid=SOMGrid(4, 4), resume=True)
        with pytest.raises(ValueError, match="resume"):
            cfg.validate()


class TestStragglerMitigation:
    """PR 8: speculative re-execution and degraded-mode completion."""

    NP = 4  # the acceptance scenario: one stalled worker out of 4 ranks

    def _mw_config(self, workload, out, **overrides):
        return _config(workload, out, mapstyle=MapStyle.MASTER_WORKER,
                       **overrides)

    def test_speculation_output_is_byte_identical_to_fault_free(
        self, workload, tmp_path
    ):
        import time

        clean = mrblast_spmd(
            self.NP, self._mw_config(workload, tmp_path / "clean")
        )

        def stall(item):  # one seeded straggler unit
            if item.block_index == 0 and item.partition_index == 0:
                time.sleep(0.5)

        spec = mrblast_spmd(
            self.NP,
            self._mw_config(
                workload,
                tmp_path / "spec",
                speculation_factor=2.0,
                unit_fault_injector=stall,
            ),
        )
        assert sum(r.speculated_units for r in spec) >= 1
        assert all(not r.degraded for r in spec)
        for c, s in zip(clean, spec):
            with open(c.output_path, "rb") as a, open(s.output_path, "rb") as b:
                assert a.read() == b.read(), f"rank {c.rank} output diverged"

    def test_mid_map_crash_completes_degraded_with_counters(
        self, workload, tmp_path
    ):
        clean = mrblast_spmd(
            self.NP, self._mw_config(workload, tmp_path / "deg-clean")
        )
        clean_sig = _signatures(collect_rank_hits([r.output_path for r in clean]))

        tripped = []

        def die_once(item):
            if item.block_index == 0 and item.partition_index == 0 and not tripped:
                tripped.append(True)
                raise RankFailure(-1, -1)

        results = mrblast_spmd(
            self.NP,
            self._mw_config(
                workload,
                tmp_path / "deg",
                degraded=True,
                unit_fault_injector=die_once,
            ),
        )
        dead = [i for i, r in enumerate(results) if r is None]
        assert len(dead) == 1 and dead[0] != 0  # one worker died, never the master
        live = [r for r in results if r is not None]
        for r in live:
            assert r.degraded
            assert r.lost_ranks == (dead[0],)
            assert r.reassigned_units >= 1
        # Survivors redid the lost work: the merged HSP set is unchanged.
        merged_sig = _signatures(collect_rank_hits([r.output_path for r in live]))
        assert merged_sig == clean_sig

    def test_degraded_mrsom_recovers_codebook(self, tmp_path):
        matrix = os.path.join(tmp_path, "deg.mat")
        rng = np.random.default_rng(11)
        write_matrix_file(matrix, rng.normal(size=(200, 6)))

        def cfg(**overrides):
            kwargs = dict(matrix_path=matrix, grid=SOMGrid(5, 5), epochs=3,
                          block_rows=20, seed=2)
            kwargs.update(overrides)
            return MrSomConfig(**kwargs)

        from repro.core.mrsom.driver import run_mrsom
        from repro.mpi.runtime import run_spmd

        clean = mrsom_spmd(self.NP, cfg())
        # Aim the crash at the middle of rank 2's measured clean op count.
        probe = SpmdJob(self.NP, run_mrsom, (cfg(degraded=True),))
        probe.run()
        crash_at = max(4, probe.network.op_count(2) // 2)
        plan = FaultPlan([CrashRank(rank=2, at_op=crash_at)])
        results = run_spmd(self.NP, run_mrsom, cfg(degraded=True),
                           fault_plan=plan)
        assert results[2] is None
        live = [r for r in results if r is not None]
        for r in live:
            assert r.degraded and r.lost_ranks == (2,)
            assert np.allclose(r.codebook, clean[0].codebook)

    def test_degraded_rejects_mrmpi_reduce_plane(self, tmp_path):
        matrix = os.path.join(tmp_path, "m.mat")
        write_matrix_file(matrix, np.ones((20, 4)))
        with pytest.raises(ValueError, match="mrmpi"):
            MrSomConfig(matrix_path=matrix, grid=SOMGrid(3, 3),
                        degraded=True, reduce_mode="mrmpi")


def _instants(session, name):
    """All ``(rank, attrs)`` pairs for instants called *name* in *session*."""
    found = []
    for trc in session.tracers:
        for ph, _ts, _sid, ev_name, _cat, attrs in trc.iter_events():
            if ph == "i" and ev_name == name:
                found.append((trc.rank, attrs or {}))
    return found


class TestFaultTraceCoverage:
    """Injected faults and resumes must be visible in the trace."""

    def test_crash_and_resume_markers_in_blast_trace(
        self, workload, tmp_path, mid_iter2_op
    ):
        from repro.obs.trace import TraceSession

        session = TraceSession(NPROCS)
        plan = FaultPlan([CrashRank(rank=1, at_op=mid_iter2_op)])
        outcome = mrblast_supervised(
            NPROCS,
            _config(workload, tmp_path / "traced-crash"),
            fault_plan=plan,
            retry=FAST_RETRY,
            trace=session,
        )
        assert outcome.succeeded

        crashes = _instants(session, "fault.crash")
        assert [rank for rank, _ in crashes] == [1]
        assert crashes[0][1]["op_index"] == mid_iter2_op

        # Both attempts emitted the resume marker: 0 for the fresh start,
        # >= 1 for the relaunch that picked up the committed iteration.
        resumes = [a["resumed_from_iteration"]
                   for _r, a in _instants(session, "mrblast.resume")]
        assert 0 in resumes
        assert any(v >= 1 for v in resumes)

        # The supervisor narrated the retry on its own timeline.
        sup = [(name, attrs or {}) for ph, _ts, _sid, name, _cat, attrs
               in session.supervisor.iter_events()]
        names = [n for n, _ in sup]
        assert names.count("supervisor.attempt") == 2
        assert "supervisor.failure" in names
        assert "supervisor.ok" in names

        # Crashed rank 1's trace still exports balanced (unwind ran).
        from repro.obs.export import chrome_trace, validate_chrome_trace

        assert validate_chrome_trace(chrome_trace(session)) == []

    def test_stall_fault_appears_in_trace(self, workload, tmp_path):
        from repro.mpi import StallRank
        from repro.obs.trace import TraceSession
        from repro.mpi.runtime import run_spmd

        session = TraceSession(NPROCS)
        plan = FaultPlan([StallRank(rank=2, at_op=5, seconds=0.05)])
        results = run_spmd(
            NPROCS,
            run_mrblast,
            _config(workload, tmp_path / "stalled"),
            fault_plan=plan,
            trace=session,
        )
        assert len(results) == NPROCS  # a stall slows the run, never kills it
        stalls = _instants(session, "fault.stall")
        assert [rank for rank, _ in stalls] == [2]
        assert stalls[0][1]["seconds"] == 0.05
        assert stalls[0][1]["op_index"] == 5

    def test_som_resume_marker_in_trace(self, tmp_path):
        from repro.obs.trace import TraceSession

        rng = np.random.default_rng(9)
        matrix = os.path.join(tmp_path, "v.mat")
        write_matrix_file(matrix, rng.normal(size=(200, 6)))

        def cfg(**overrides):
            kwargs = dict(
                matrix_path=matrix, grid=SOMGrid(5, 5), epochs=4,
                block_rows=40, mapstyle=MapStyle.CHUNK,
                checkpoint_dir=str(tmp_path / "ck"),
            )
            kwargs.update(overrides)
            return MrSomConfig(**kwargs)

        session = TraceSession(NPROCS)
        plan = FaultPlan([CrashRank(rank=1, at_op=10)])
        outcome = mrsom_supervised(
            NPROCS, cfg(), fault_plan=plan, retry=FAST_RETRY, trace=session,
        )
        assert outcome.succeeded
        assert _instants(session, "fault.crash")
        resumes = [a["resumed_from_epoch"]
                   for _r, a in _instants(session, "mrsom.resume")]
        assert 0 in resumes
        assert any(v >= 1 for v in resumes)
        # Epoch checkpoints the master committed are on the timeline too.
        commits = _instants(session, "checkpoint.commit")
        assert all(rank == 0 for rank, _ in commits)
        assert len(commits) >= cfg().epochs
