"""blastx end-to-end through the full MR-MPI pipeline."""

import pytest

from repro.bio import SeqRecord, random_protein
from repro.bio.seq import CODON_TABLE, reverse_complement
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, mrblast_spmd
from repro.core.baselines import run_serial_blast
from repro.core.mrblast.merge import collect_rank_hits


def back_translate(protein: str) -> str:
    by_aa: dict[str, str] = {}
    for codon, aa in sorted(CODON_TABLE.items()):
        by_aa.setdefault(aa, codon)
    return "".join(by_aa[a] for a in protein)


@pytest.fixture(scope="module")
def blastx_workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("xmr")
    proteins = [random_protein(160, seed_or_rng=i) for i in range(4)]
    db = [SeqRecord(f"prot{i}", p) for i, p in enumerate(proteins)]
    alias = format_database(db, tmp, "protdb", kind="protein", max_volume_bytes=2048)
    reads = [
        SeqRecord("readF0", "GG" + back_translate(proteins[0])),
        SeqRecord("readR1", reverse_complement(back_translate(proteins[1]) + "A")),
        SeqRecord("readF2", back_translate(proteins[2][:80])),
    ]
    blocks = [reads[:2], reads[2:]]
    options = BlastOptions.blastx(evalue=1e-8, max_hits=5)
    return str(alias), blocks, options


def test_mrblast_blastx_equals_serial(blastx_workload, tmp_path):
    alias, blocks, options = blastx_workload
    serial = run_serial_blast(alias, blocks, options)
    assert set(serial) == {"readF0", "readR1", "readF2"}

    results = mrblast_spmd(3, MrBlastConfig(
        alias_path=alias, query_blocks=blocks, options=options,
        output_dir=str(tmp_path / "x"),
    ))
    merged = collect_rank_hits([r.output_path for r in results])
    assert set(merged) == set(serial)
    for qid in serial:
        got = [(h.subject_id, h.q_start, h.q_end, h.strand) for h in merged[qid]]
        want = [(h.subject_id, h.q_start, h.q_end, h.strand) for h in serial[qid]]
        assert got == want


def test_blastx_targets_correct_subjects(blastx_workload, tmp_path):
    alias, blocks, options = blastx_workload
    serial = run_serial_blast(alias, blocks, options)
    assert serial["readF0"][0].subject_id == "prot0"
    assert serial["readR1"][0].subject_id == "prot1"
    assert serial["readR1"][0].strand == -1
    assert serial["readF2"][0].subject_id == "prot2"


def test_blastx_options_factory():
    o = BlastOptions.blastx(evalue=1e-4)
    assert o.program == "blastx"
    assert o.word_size == 3 and o.gap_open == 11
