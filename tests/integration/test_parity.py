"""Parallel == serial parity: the reproduction's central correctness suite.

The paper's whole point is that wrapping the unmodified serial algorithm in
MapReduce-MPI leaves results identical to a serial run.  These tests run the
complete parallel pipelines on the in-process MPI runtime and compare
against the serial baselines, bit-for-bit where the arithmetic allows.
"""

import numpy as np
import pytest

from repro.bio import (
    SeqRecord,
    shred_records,
    synthetic_community,
    synthetic_nt_database,
    synthetic_protein_database,
)
from repro.blast import BlastOptions, format_database
from repro.blast.hsp import HSP
from repro.core import MrBlastConfig, MrSomConfig, mrblast_spmd, mrsom_spmd
from repro.core.baselines import (
    run_htc_blast,
    run_serial_batch_som,
    run_serial_blast,
)
from repro.core.baselines.mpiblast_like import mpiblast_like_spmd
from repro.core.mrblast.mapper import exclude_self_hits
from repro.core.mrblast.merge import collect_rank_hits, merge_rank_outputs
from repro.core.mrsom.mmap_input import write_matrix_file
from repro.mrmpi import MapStyle
from repro.som.codebook import SOMGrid


# --------------------------------------------------------------------------
# Shared nucleotide workload: community reads vs partitioned homolog DB.
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def nt_workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("nt")
    com = synthetic_community(n_genomes=4, genome_length=2500, seed=13)
    db = synthetic_nt_database(com, n_decoys=3, decoy_length=1500, homolog_rate=0.05, seed=14)
    alias_path = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1500)
    reads = list(shred_records(com.genomes))[:12]
    blocks = [reads[i : i + 3] for i in range(0, len(reads), 3)]
    options = BlastOptions.blastn(evalue=1e-4, max_hits=25)
    return str(alias_path), blocks, options, reads


def hit_signature(h: HSP) -> tuple:
    return (
        h.query_id, h.subject_id, h.q_start, h.q_end, h.s_start, h.s_end,
        h.strand, h.align_len, h.identities, h.gaps,
        round(h.bit_score, 1), round(float(np.log10(max(h.evalue, 1e-300))), 4),
    )


def flatten(merged: dict[str, list[HSP]]) -> list[tuple]:
    return sorted(hit_signature(h) for hits in merged.values() for h in hits)


class TestMrBlastParity:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_mrblast_equals_serial(self, nt_workload, tmp_path, nprocs):
        alias_path, blocks, options, _ = nt_workload
        serial = run_serial_blast(alias_path, blocks, options)
        config = MrBlastConfig(
            alias_path=alias_path,
            query_blocks=blocks,
            options=options,
            output_dir=str(tmp_path / f"np{nprocs}"),
        )
        results = mrblast_spmd(nprocs, config)
        parallel = collect_rank_hits([r.output_path for r in results])
        assert set(parallel) == set(serial)
        assert flatten(parallel) == flatten(serial)

    def test_multiple_iterations_equal_single(self, nt_workload, tmp_path):
        """The outer loop over query subsets must not change results."""
        alias_path, blocks, options, _ = nt_workload
        one = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias_path, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "single"), blocks_per_iteration=0,
        ))
        many = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias_path, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "multi"), blocks_per_iteration=1,
        ))
        hits_one = collect_rank_hits([r.output_path for r in one])
        hits_many = collect_rank_hits([r.output_path for r in many])
        assert flatten(hits_one) == flatten(hits_many)

    @pytest.mark.parametrize("style", [MapStyle.CHUNK, MapStyle.STRIDED])
    def test_mapstyle_does_not_change_results(self, nt_workload, tmp_path, style):
        alias_path, blocks, options, _ = nt_workload
        serial = run_serial_blast(alias_path, blocks, options)
        results = mrblast_spmd(2, MrBlastConfig(
            alias_path=alias_path, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / f"style{int(style)}"), mapstyle=style,
        ))
        parallel = collect_rank_hits([r.output_path for r in results])
        assert flatten(parallel) == flatten(serial)

    def test_each_query_in_exactly_one_rank_file(self, nt_workload, tmp_path):
        alias_path, blocks, options, _ = nt_workload
        results = mrblast_spmd(4, MrBlastConfig(
            alias_path=alias_path, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "placement"),
        ))
        # collect_rank_hits raises if a query spans two files.
        merged = collect_rank_hits([r.output_path for r in results])
        assert merged, "workload must produce hits"

    def test_per_query_hits_sorted_by_evalue(self, nt_workload, tmp_path):
        alias_path, blocks, options, _ = nt_workload
        results = mrblast_spmd(2, MrBlastConfig(
            alias_path=alias_path, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "sorted"),
        ))
        merged = collect_rank_hits([r.output_path for r in results])
        for qid, hits in merged.items():
            evalues = [h.evalue for h in hits]
            assert evalues == sorted(evalues), f"hits of {qid} not E-value sorted"

    def test_self_hit_exclusion(self, nt_workload, tmp_path):
        """The paper excluded RefSeq fragments hitting their own parent."""
        alias_path, blocks, options, _ = nt_workload
        results = mrblast_spmd(2, MrBlastConfig(
            alias_path=alias_path, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "selfhit"), hit_filter=exclude_self_hits,
        ))
        merged = collect_rank_hits([r.output_path for r in results])
        from repro.bio.shred import parent_id
        for qid, hits in merged.items():
            for h in hits:
                assert h.subject_id != f"db_{parent_id(qid)}"

    def test_master_worker_stats(self, nt_workload, tmp_path):
        alias_path, blocks, options, _ = nt_workload
        results = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias_path, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "stats"),
        ))
        assert results[0].units_processed == 0  # master maps nothing
        from repro.blast.dbreader import DatabaseAlias
        n_parts = DatabaseAlias.load(alias_path).num_partitions
        total_units = sum(r.units_processed for r in results)
        assert total_units == len(blocks) * n_parts
        assert all(r.map_seconds > 0 for r in results)

    def test_merge_rank_outputs(self, nt_workload, tmp_path):
        alias_path, blocks, options, reads = nt_workload
        results = mrblast_spmd(2, MrBlastConfig(
            alias_path=alias_path, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "merge"),
        ))
        merged_path = tmp_path / "all.tsv"
        n = merge_rank_outputs(
            [r.output_path for r in results], str(merged_path),
            query_order=[r.id for r in reads],
        )
        assert n == sum(r.hits_written for r in results)
        from repro.blast.tabular import parse_tabular
        qids = [h.query_id for h in parse_tabular(str(merged_path))]
        read_order = {r.id: i for i, r in enumerate(reads)}
        positions = [read_order[q] for q in qids]
        assert positions == sorted(positions)


class TestBaselinesParity:
    def test_htc_workflow_equals_serial(self, nt_workload, tmp_path):
        alias_path, blocks, options, _ = nt_workload
        serial = run_serial_blast(alias_path, blocks, options)
        htc = run_htc_blast(alias_path, blocks, options, str(tmp_path / "htc"))
        from repro.blast.dbreader import DatabaseAlias
        n_parts = DatabaseAlias.load(alias_path).num_partitions
        assert htc.n_jobs == len(blocks) * n_parts
        assert set(htc.merged) == set(serial)
        # File round-trip loses raw scores; compare coordinates and counts.
        for qid in serial:
            got = [(h.subject_id, h.q_start, h.q_end, h.s_start, h.s_end, h.strand)
                   for h in htc.merged[qid]]
            want = [(h.subject_id, h.q_start, h.q_end, h.s_start, h.s_end, h.strand)
                    for h in serial[qid]]
            assert got == want
        assert htc.longest_job_seconds > 0
        assert htc.total_cpu_seconds >= htc.longest_job_seconds

    @pytest.mark.parametrize("nprocs", [1, 3])
    def test_mpiblast_like_equals_serial(self, nt_workload, nprocs):
        alias_path, blocks, options, _ = nt_workload
        serial = run_serial_blast(alias_path, blocks, options)
        results = mpiblast_like_spmd(nprocs, alias_path, blocks, options)
        merged = results[0].hits
        assert flatten(merged) == flatten(serial)
        owned = [p for r in results for p in r.partitions_owned]
        from repro.blast.dbreader import DatabaseAlias
        assert sorted(owned) == list(range(DatabaseAlias.load(alias_path).num_partitions))


class TestMrSomParity:
    @pytest.fixture(scope="class")
    def som_workload(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("som")
        rng = np.random.default_rng(21)
        data = rng.random((400, 8))
        path = write_matrix_file(tmp / "vectors.mat", data)
        return str(path), data

    @pytest.mark.parametrize("nprocs", [1, 2, 5])
    def test_parallel_equals_serial(self, som_workload, nprocs):
        path, _ = som_workload
        config = MrSomConfig(matrix_path=path, grid=SOMGrid(6, 6), epochs=5, block_rows=37)
        serial_cb = run_serial_batch_som(config)
        results = mrsom_spmd(nprocs, config)
        for r in results:
            np.testing.assert_allclose(r.codebook, serial_cb, atol=1e-9)

    def test_all_ranks_get_identical_codebook(self, som_workload):
        path, _ = som_workload
        config = MrSomConfig(matrix_path=path, grid=SOMGrid(5, 5), epochs=3, block_rows=50)
        results = mrsom_spmd(4, config)
        for r in results[1:]:
            np.testing.assert_array_equal(r.codebook, results[0].codebook)

    @pytest.mark.parametrize("nprocs", [1, 3, 4])
    def test_mrmpi_reduce_mode_is_bit_identical(self, som_workload, nprocs, tmp_path):
        """Routing the Eq. 5 accumulators through the columnar MR-MPI plane
        (instead of the paper's direct MPI_Reduce) must not change a single
        bit: the reducer replays the same additions in the same binomial
        order.  4 ranks exercises a two-level reduction tree."""
        path, _ = som_workload
        kwargs = dict(
            matrix_path=path, grid=SOMGrid(6, 5), epochs=4, block_rows=40,
            mapstyle=MapStyle.CHUNK,
        )
        direct = mrsom_spmd(nprocs, MrSomConfig(**kwargs))
        mrmpi = mrsom_spmd(nprocs, MrSomConfig(**kwargs, reduce_mode="mrmpi"))
        np.testing.assert_array_equal(mrmpi[0].codebook, direct[0].codebook)
        if nprocs > 1:
            assert mrmpi[0].shuffle_pairs_moved > 0

    def test_mrmpi_reduce_mode_out_of_core_is_bit_identical(self, som_workload, tmp_path):
        import glob

        path, _ = som_workload
        kwargs = dict(
            matrix_path=path, grid=SOMGrid(6, 5), epochs=3, block_rows=40,
            mapstyle=MapStyle.CHUNK,
        )
        direct = mrsom_spmd(3, MrSomConfig(**kwargs))
        spooled = mrsom_spmd(3, MrSomConfig(
            **kwargs, reduce_mode="mrmpi", memsize=512, spool_dir=str(tmp_path),
        ))
        np.testing.assert_array_equal(spooled[0].codebook, direct[0].codebook)
        assert glob.glob(str(tmp_path / "*")) == []

    def test_block_size_does_not_change_result(self, som_workload):
        """Fig. 6 note: '80-vector work units produced identical timings' —
        and identical results, since Eq. 5 sums are associative."""
        path, _ = som_workload
        cb40 = mrsom_spmd(2, MrSomConfig(
            matrix_path=path, grid=SOMGrid(6, 6), epochs=4, block_rows=40))[0].codebook
        cb80 = mrsom_spmd(2, MrSomConfig(
            matrix_path=path, grid=SOMGrid(6, 6), epochs=4, block_rows=80))[0].codebook
        np.testing.assert_allclose(cb40, cb80, atol=1e-9)

    def test_training_actually_learns(self, som_workload):
        path, data = som_workload
        from repro.som import quantization_error
        from repro.som.codebook import init_codebook

        grid = SOMGrid(8, 8)
        config = MrSomConfig(matrix_path=path, grid=grid, epochs=10, block_rows=40)
        cb = mrsom_spmd(3, config)[0].codebook
        qe_init = quantization_error(data, init_codebook(grid, data, method="linear"))
        # The final radius of 1.0 keeps the map smooth, so QE saturates well
        # above zero; a solid relative improvement is the right assertion.
        assert quantization_error(data, cb) < 0.85 * qe_init

    def test_work_unit_accounting(self, som_workload):
        path, data = som_workload
        config = MrSomConfig(matrix_path=path, grid=SOMGrid(4, 4), epochs=2, block_rows=40)
        results = mrsom_spmd(3, config)
        total_units = sum(r.units_processed for r in results)
        expected_per_epoch = -(-data.shape[0] // 40)
        assert total_units == expected_per_epoch * config.epochs
        assert results[0].units_processed == 0  # master-worker: rank 0 idle


class TestTracingParity:
    """Tracing must observe, never perturb: identical bytes on and off."""

    def test_mrblast_traced_output_is_byte_identical(self, nt_workload, tmp_path):
        alias_path, blocks, options, _ = nt_workload
        base = dict(alias_path=alias_path, query_blocks=blocks, options=options)
        plain = mrblast_spmd(3, MrBlastConfig(
            **base, output_dir=str(tmp_path / "plain")))
        trace_path = tmp_path / "trace.json"
        traced = mrblast_spmd(3, MrBlastConfig(
            **base, output_dir=str(tmp_path / "traced"),
            trace_path=str(trace_path)))
        for p, t in zip(plain, traced):
            with open(p.output_path, "rb") as fp, open(t.output_path, "rb") as ft:
                assert fp.read() == ft.read()
        assert trace_path.exists()
        import json
        from repro.obs.export import validate_chrome_trace
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []

    def test_mrsom_traced_codebook_is_bit_identical(self, tmp_path):
        rng = np.random.default_rng(31)
        path = write_matrix_file(tmp_path / "v.mat", rng.random((200, 6)))
        # CHUNK: static schedule, so two runs add floats in the same order.
        base = dict(matrix_path=str(path), grid=SOMGrid(5, 5), epochs=3,
                    block_rows=40, mapstyle=MapStyle.CHUNK)
        plain = mrsom_spmd(3, MrSomConfig(**base))
        traced = mrsom_spmd(3, MrSomConfig(
            **base, trace_path=str(tmp_path / "trace.json")))
        np.testing.assert_array_equal(traced[0].codebook, plain[0].codebook)
        assert (tmp_path / "trace.json").exists()
