"""Full mrblast pipeline under memory pressure: paging everywhere.

The paper's §III.A discusses exactly this regime: the working set can
exceed the per-rank memory budget, at which point MapReduce-MPI pages
key-value stores to files and the outer iteration loop bounds the in-flight
set.  This test forces all of it at once — a tiny ``memsize`` so map
output spills, the aggregate exchange runs multiple rounds, and convert
takes the external-grouping path — and requires bit-identical results.
"""

import pytest

from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, mrblast_spmd
from repro.core.baselines import run_serial_blast
from repro.core.mrblast.merge import collect_rank_hits


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("ooc")
    com = synthetic_community(n_genomes=4, genome_length=2200, seed=81)
    db = synthetic_nt_database(com, n_decoys=3, decoy_length=1400,
                               homolog_rate=0.05, seed=82,
                               homologs_per_genome=3)
    alias = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1300)
    reads = list(shred_records(com.genomes))[:16]
    blocks = [reads[i : i + 4] for i in range(0, len(reads), 4)]
    options = BlastOptions.blastn(evalue=1e-3, max_hits=30)
    return str(alias), blocks, options


def _sig(merged):
    return sorted(
        (q, h.subject_id, h.q_start, h.q_end, h.s_start, h.s_end,
         h.strand, round(h.bit_score, 1))
        for q, hits in merged.items()
        for h in hits
    )


def test_tiny_memsize_pipeline_matches_serial(workload, tmp_path):
    alias, blocks, options = workload
    serial = run_serial_blast(alias, blocks, options)

    # 4 KB pages: HSP objects are hundreds of bytes, so map output spills
    # after a handful of pairs and the aggregate runs many rounds.
    results = mrblast_spmd(4, MrBlastConfig(
        alias_path=alias, query_blocks=blocks, options=options,
        output_dir=str(tmp_path / "ooc"), memsize=4096,
    ))
    merged = collect_rank_hits([r.output_path for r in results])
    assert _sig(merged) == _sig(serial)


def test_tiny_memsize_with_all_features_on(workload, tmp_path):
    """Paging + multi-iteration + combiner + locality, all at once."""
    alias, blocks, options = workload
    serial = run_serial_blast(alias, blocks, options)
    results = mrblast_spmd(3, MrBlastConfig(
        alias_path=alias, query_blocks=blocks, options=options,
        output_dir=str(tmp_path / "all"), memsize=4096,
        blocks_per_iteration=2, combiner=True, locality_aware=True,
        work_order="query_major",
    ))
    merged = collect_rank_hits([r.output_path for r in results])
    assert _sig(merged) == _sig(serial)


def test_spilling_actually_happened(workload, tmp_path):
    """Guard against the test silently running in-memory."""
    from repro.mpi import run_spmd
    from repro.mrmpi import MapReduce

    alias, blocks, options = workload

    def main(comm):
        from repro.core.mrblast.mapper import MrBlastMapper
        from repro.core.mrblast.workitems import build_work_items
        from repro.blast.dbreader import DatabaseAlias

        alias_obj = DatabaseAlias.load(alias)
        mapper = MrBlastMapper(alias_obj, blocks, options)
        mr = MapReduce(comm, memsize=4096)
        items = build_work_items(len(blocks), alias_obj.num_partitions)
        mr.map_items(items, mapper)
        spilled = mr.kv is not None and mr.kv.out_of_core
        any_spilled = mr.comm.allreduce(int(spilled))
        mr.close()
        return any_spilled

    assert run_spmd(3, main)[0] > 0


@pytest.mark.parametrize("memsize", [4096, None], ids=["out-of-core", "in-core"])
def test_columnar_and_object_planes_byte_identical(workload, tmp_path, memsize):
    """The columnar data plane is a representation change, not a semantics
    change: per-rank output files must match the object plane byte for byte,
    in-core and when a tiny memsize forces multi-page spill on both planes.
    """
    alias, blocks, options = workload
    overrides = {} if memsize is None else {"memsize": memsize}
    col = mrblast_spmd(3, MrBlastConfig(
        alias_path=alias, query_blocks=blocks, options=options,
        output_dir=str(tmp_path / f"col{memsize}"), **overrides,
    ))
    obj = mrblast_spmd(3, MrBlastConfig(
        alias_path=alias, query_blocks=blocks, options=options,
        output_dir=str(tmp_path / f"obj{memsize}"), columnar=False, **overrides,
    ))
    # identical key placement (the vectorized hash equals the scalar hash)
    # means rank r's file is the same file in both runs
    import os
    for c, o in zip(col, obj):
        c_bytes = open(c.output_path, "rb").read() if os.path.exists(c.output_path) else b""
        o_bytes = open(o.output_path, "rb").read() if os.path.exists(o.output_path) else b""
        assert c_bytes == o_bytes, f"rank {c.rank} output differs between planes"
    assert collect_rank_hits([r.output_path for r in col]) == collect_rank_hits(
        [r.output_path for r in obj]
    )
