"""Fused vs staged scheduler parity through the full mrblast pipeline.

The engine-level property suite pins ``search_block`` output; this pins the
production surface: per-rank output files of a fused run compare equal
byte for byte to a staged run — on both transport backends, in-core and
when a tiny ``memsize`` forces the columnar plane through multi-page
spill.  The fused scheduler is the default, so these tests are what
certifies the default path against the PR-2 oracle.
"""

from dataclasses import replace

import pytest

from repro.blast import BlastOptions, format_database
from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.core import MrBlastConfig, mrblast_spmd


@pytest.fixture(scope="module")
def nt_workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("nt_fused")
    com = synthetic_community(n_genomes=3, genome_length=2000, seed=61)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1200, homolog_rate=0.05, seed=62)
    alias_path = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1500)
    reads = list(shred_records(com.genomes))[:8]
    blocks = [reads[i : i + 2] for i in range(0, len(reads), 2)]
    options = BlastOptions.blastn(evalue=1e-4, max_hits=25)
    return str(alias_path), blocks, options


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("memsize", [None, 512])
def test_rank_files_byte_identical(nt_workload, tmp_path, backend, memsize):
    """Fused (default) vs staged mrblast: same bytes in every rank file,
    whichever transport carries the messages and whether or not the KV
    plane spills."""
    alias_path, blocks, options = nt_workload
    base = dict(alias_path=alias_path, query_blocks=blocks, backend=backend)
    if memsize is not None:
        base["memsize"] = memsize
    tag = f"{backend}-{memsize or 'incore'}"
    fused = mrblast_spmd(3, MrBlastConfig(
        **base, options=options,
        output_dir=str(tmp_path / f"fused-{tag}"),
        spool_dir=str(tmp_path / f"fspool-{tag}")))
    staged = mrblast_spmd(3, MrBlastConfig(
        **base, options=replace(options, fused=False),
        output_dir=str(tmp_path / f"staged-{tag}"),
        spool_dir=str(tmp_path / f"sspool-{tag}")))
    assert sum(r.hits_written for r in fused) > 0
    for f, s in zip(fused, staged):
        assert (f.rank, f.hits_written, f.queries_written) == (
            s.rank, s.hits_written, s.queries_written)
        with open(f.output_path, "rb") as ff, open(s.output_path, "rb") as fs:
            assert ff.read() == fs.read(), f"rank {f.rank} output diverged"
    # Telemetry: fused runs count rounds and slab bytes, staged runs don't.
    assert sum(r.fused_rounds for r in fused) > 0
    assert max(r.peak_slab_bytes for r in fused) > 0
    assert sum(r.fused_rounds for r in staged) == 0


def test_fused_round_instants_in_trace(nt_workload, tmp_path):
    """The fused scheduler emits ``blast.fused_round`` instants carrying
    the round telemetry the obs layer's stage reports consume."""
    import json

    alias_path, blocks, options = nt_workload
    trace_path = tmp_path / "trace.json"
    results = mrblast_spmd(2, MrBlastConfig(
        alias_path=alias_path, query_blocks=blocks, options=options,
        output_dir=str(tmp_path / "out"), trace_path=str(trace_path)))
    doc = json.loads(trace_path.read_text())
    rounds = [ev for ev in doc["traceEvents"]
              if ev.get("name") == "blast.fused_round"]
    assert len(rounds) == sum(r.fused_rounds for r in results) > 0
    for ev in rounds:
        args = ev.get("args", {})
        assert args.get("rows", 0) > 0
        assert args.get("slab_bytes", 0) > 0
