"""compress() combiner: local pre-aggregation before the shuffle."""

import pytest

from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, mrblast_spmd
from repro.core.mrblast.merge import collect_rank_hits
from repro.mpi import run_spmd
from repro.mrmpi import MapReduce, MapStyle


class TestCompress:
    def test_local_sum_combiner(self):
        def main(comm):
            mr = MapReduce(comm, mapstyle=MapStyle.STRIDED)
            mr.map_items(
                list(range(40)), lambda t, item, kv: kv.add(f"k{item % 4}", 1)
            )
            before, _ = mr.kv_stats()
            mr.compress(lambda k, vs, kv: kv.add(k, sum(vs)))
            after, _ = mr.kv_stats()
            mr.collate()
            mr.reduce(lambda k, vs, kv: kv.add(k, sum(vs)))
            counts = {}
            mr.scan_kv(lambda k, v: counts.__setitem__(k, v))
            gathered = mr.comm.gather(counts, root=0)
            mr.close()
            return (before, after, gathered)

        before, after, gathered = run_spmd(3, main)[0]
        assert before == 40
        assert after <= 3 * 4  # at most ranks x unique keys after combining
        merged = {}
        for d in gathered:
            merged.update(d)
        assert merged == {f"k{i}": 10 for i in range(4)}

    def test_compress_requires_kv(self):
        def main(comm):
            mr = MapReduce(comm)
            with pytest.raises(RuntimeError):
                mr.compress(lambda k, vs, kv: None)
            mr.close()
            return True

        assert run_spmd(1, main) == [True]

    def test_compress_timer_recorded(self):
        def main(comm):
            mr = MapReduce(comm)
            mr.map(4, lambda i, kv: kv.add(i % 2, i))
            mr.compress(lambda k, vs, kv: kv.add(k, sorted(vs)))
            phases = set(mr.timers)
            mr.close()
            return phases

        assert "compress" in run_spmd(2, main)[0]


class TestMrBlastCombiner:
    @pytest.fixture(scope="class")
    def workload(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("comb")
        com = synthetic_community(n_genomes=3, genome_length=2200, seed=61)
        db = synthetic_nt_database(com, n_decoys=2, decoy_length=1400, seed=62)
        alias = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1300)
        reads = list(shred_records(com.genomes))[:9]
        blocks = [reads[i : i + 3] for i in range(0, len(reads), 3)]
        return str(alias), blocks, BlastOptions.blastn(evalue=1e-4, max_hits=10)

    def test_combiner_preserves_results(self, workload, tmp_path):
        alias, blocks, options = workload
        plain = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "plain"),
        ))
        combined = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "combined"), combiner=True,
        ))
        hits_plain = collect_rank_hits([r.output_path for r in plain])
        hits_combined = collect_rank_hits([r.output_path for r in combined])
        assert set(hits_plain) == set(hits_combined)
        for qid in hits_plain:
            a = [(h.subject_id, h.q_start, h.s_start, round(h.bit_score, 1))
                 for h in hits_plain[qid]]
            b = [(h.subject_id, h.q_start, h.s_start, round(h.bit_score, 1))
                 for h in hits_combined[qid]]
            assert a == b
