"""Thread vs process transport parity: same program, same bytes.

The process backend exists for throughput, not for new semantics.  Every
pipeline must produce byte-identical artifacts whichever transport carries
the messages: mrblast per-rank output files compare equal byte-for-byte,
and CHUNK-mode SOM codebooks (a fixed floating-point addition order) are
bit-identical — in-core and when the columnar plane is forced to spill
across multiple pages.
"""

import numpy as np
import pytest

from repro.blast import BlastOptions, format_database
from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.core import MrBlastConfig, MrSomConfig, mrblast_spmd, mrsom_spmd
from repro.core.mrsom.mmap_input import write_matrix_file
from repro.mrmpi import MapStyle
from repro.som.codebook import SOMGrid


@pytest.fixture(scope="module")
def nt_workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("nt_backend")
    com = synthetic_community(n_genomes=3, genome_length=2000, seed=47)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1200, homolog_rate=0.05, seed=48)
    alias_path = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1500)
    reads = list(shred_records(com.genomes))[:8]
    blocks = [reads[i : i + 2] for i in range(0, len(reads), 2)]
    options = BlastOptions.blastn(evalue=1e-4, max_hits=25)
    return str(alias_path), blocks, options


@pytest.fixture(scope="module")
def som_workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("som_backend")
    rng = np.random.default_rng(53)
    data = rng.random((300, 8))
    path = write_matrix_file(tmp / "vectors.mat", data)
    return str(path)


def _rank_outputs(results):
    out = []
    for r in results:
        with open(r.output_path, "rb") as f:
            out.append(f.read())
    return out


class TestMrBlastBackendParity:
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_per_rank_output_files_byte_identical(self, nt_workload, tmp_path, nprocs):
        # Three-way: thread oracle vs process+arena (the default) vs the
        # per-message process path (arena_mb=0).  Zero-copy framing must
        # not change a single output byte.
        alias_path, blocks, options = nt_workload
        base = dict(alias_path=alias_path, query_blocks=blocks, options=options)
        thread = mrblast_spmd(nprocs, MrBlastConfig(
            **base, output_dir=str(tmp_path / "thread"), backend="thread"))
        arena = mrblast_spmd(nprocs, MrBlastConfig(
            **base, output_dir=str(tmp_path / "arena"), backend="process"))
        permsg = mrblast_spmd(nprocs, MrBlastConfig(
            **base, output_dir=str(tmp_path / "permsg"), backend="process",
            arena_mb=0))
        assert len(thread) == len(arena) == len(permsg) == nprocs
        t_bytes = _rank_outputs(thread)
        assert _rank_outputs(arena) == t_bytes
        assert _rank_outputs(permsg) == t_bytes
        for t, a in zip(thread, arena):
            assert t.hits_written == a.hits_written

    def test_spill_outputs_byte_identical_with_and_without_arena(
            self, nt_workload, tmp_path):
        # A tiny memsize forces the collate plane through multi-page
        # spill, so shuffle pages cross the transport in many exchanges;
        # the arena and per-message paths must still agree byte-for-byte.
        alias_path, blocks, options = nt_workload
        base = dict(alias_path=alias_path, query_blocks=blocks,
                    options=options, memsize=2048)
        runs = {}
        for label, extra in [
            ("thread", dict(backend="thread")),
            ("arena", dict(backend="process")),
            ("permsg", dict(backend="process", arena_mb=0)),
        ]:
            spool = tmp_path / f"spool_{label}"
            spool.mkdir()
            runs[label] = mrblast_spmd(3, MrBlastConfig(
                **base, output_dir=str(tmp_path / label),
                spool_dir=str(spool), **extra))
        t_bytes = _rank_outputs(runs["thread"])
        assert _rank_outputs(runs["arena"]) == t_bytes
        assert _rank_outputs(runs["permsg"]) == t_bytes

    def test_stats_identical_across_backends(self, nt_workload, tmp_path):
        alias_path, blocks, options = nt_workload
        base = dict(alias_path=alias_path, query_blocks=blocks, options=options)
        thread = mrblast_spmd(3, MrBlastConfig(
            **base, output_dir=str(tmp_path / "t"), backend="thread"))
        process = mrblast_spmd(3, MrBlastConfig(
            **base, output_dir=str(tmp_path / "p"), backend="process"))
        # Per-rank unit counts come from the dynamic master-worker schedule
        # and are timing-dependent; the totals and the collated per-rank
        # outputs are the deterministic surface.
        assert sum(t.units_processed for t in thread) == \
            sum(p.units_processed for p in process)
        for t, p in zip(thread, process):
            assert (t.rank, t.hits_written, t.queries_written) == (
                p.rank, p.hits_written, p.queries_written)


class TestMrSomBackendParity:
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_chunk_codebook_bit_identical(self, som_workload, nprocs):
        # CHUNK: static schedule, so both backends replay the exact same
        # floating-point addition order — bit equality, not allclose.
        base = dict(matrix_path=som_workload, grid=SOMGrid(6, 5), epochs=3,
                    block_rows=40, mapstyle=MapStyle.CHUNK)
        thread = mrsom_spmd(nprocs, MrSomConfig(**base, backend="thread"))
        process = mrsom_spmd(nprocs, MrSomConfig(**base, backend="process"))
        np.testing.assert_array_equal(process[0].codebook, thread[0].codebook)
        for r in process[1:]:
            np.testing.assert_array_equal(r.codebook, process[0].codebook)

    def test_mrmpi_reduce_spill_bit_identical(self, som_workload, tmp_path):
        # Tiny memsize forces the columnar plane through multi-page spill;
        # pages then cross the process transport as shared-memory blocks.
        base = dict(matrix_path=som_workload, grid=SOMGrid(6, 5), epochs=2,
                    block_rows=40, mapstyle=MapStyle.CHUNK, reduce_mode="mrmpi")
        (tmp_path / "t").mkdir()
        (tmp_path / "p").mkdir()
        thread = mrsom_spmd(3, MrSomConfig(
            **base, memsize=512, spool_dir=str(tmp_path / "t"), backend="thread"))
        process = mrsom_spmd(3, MrSomConfig(
            **base, memsize=512, spool_dir=str(tmp_path / "p"), backend="process"))
        np.testing.assert_array_equal(process[0].codebook, thread[0].codebook)
        assert process[0].shuffle_pairs_moved == thread[0].shuffle_pairs_moved
