"""Trace-vs-counters cross-check: the trace is a second source of truth.

Every number the stack reports through legacy counters — ``MapReduce``
phase timers, shuffle pairs/bytes, ``MapperStats`` stage seconds, mrsom's
bcast/reduce seconds — must be recomputable *exactly* from the trace.
The instrumentation records the very float that incremented the counter
as a span attribute and the reports sum in the same order, so agreement
is asserted with ``==``, not ``approx``.
"""

import numpy as np
import pytest

from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, MrSomConfig
from repro.core.mrblast.driver import run_mrblast
from repro.core.mrsom.driver import run_mrsom
from repro.core.mrsom.mmap_input import write_matrix_file
from repro.mpi.runtime import run_spmd
from repro.mrmpi import MapStyle
from repro.obs.report import (
    phase_durations,
    shuffle_traffic,
    span_records,
    stage_breakdown,
    utilization_report,
)
from repro.obs.trace import TraceSession
from repro.som.codebook import SOMGrid

NPROCS = 3


@pytest.fixture(scope="module")
def blast_run(tmp_path_factory):
    """One traced mrblast run; returns (session, per-rank results)."""
    tmp = tmp_path_factory.mktemp("xchk")
    com = synthetic_community(n_genomes=3, genome_length=2000, seed=5)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1000, seed=6)
    alias_path = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1500)
    reads = list(shred_records(com.genomes))[:8]
    blocks = [reads[i : i + 2] for i in range(0, len(reads), 2)]
    config = MrBlastConfig(
        alias_path=str(alias_path),
        query_blocks=blocks,
        options=BlastOptions.blastn(evalue=1e-4, max_hits=25),
        output_dir=str(tmp / "out"),
    )
    session = TraceSession(NPROCS)
    results = run_spmd(NPROCS, run_mrblast, config, trace=session)
    return session, results


class TestBlastCrosscheck:
    def test_phase_seconds_match_timers_exactly(self, blast_run):
        session, results = blast_run
        durations = phase_durations(session)
        for r in results:
            mine = durations[r.rank]
            assert mine.get("map", 0.0) == r.map_seconds
            assert mine.get("aggregate", 0.0) + mine.get("convert", 0.0) \
                == r.collate_seconds
            assert mine.get("reduce", 0.0) == r.reduce_seconds

    def test_shuffle_traffic_matches_stats_exactly(self, blast_run):
        session, results = blast_run
        traffic = shuffle_traffic(session)
        for r in results:
            mine = traffic["per_rank"][r.rank].get(
                "aggregate", {"pairs": 0, "bytes": 0})
            assert mine["pairs"] == r.shuffle_pairs_moved
            assert mine["bytes"] == r.shuffle_bytes_moved
        assert traffic["totals"]["aggregate"]["pairs"] \
            == sum(r.shuffle_pairs_moved for r in results)

    def test_stage_seconds_match_mapper_stats_exactly(self, blast_run):
        session, results = blast_run
        stages = stage_breakdown(session)
        for r in results:
            mine = stages[r.rank]
            assert mine["busy_s"] == r.busy_seconds
            assert mine["seed_s"] == r.seed_seconds
            assert mine["ungapped_s"] == r.ungapped_seconds
            assert mine["gapped_s"] == r.gapped_seconds
            assert mine["units"] == r.units_processed
            assert mine["hits"] == r.hits_emitted

    def test_utilization_report_totals_match_counters(self, blast_run):
        """The Fig. 5 report is computed from the trace alone — its totals
        must equal the counter-derived numbers exactly."""
        session, results = blast_run
        rep = utilization_report(session)
        assert rep["stage_totals"]["busy_s"] == \
            sum(r.busy_seconds for r in results)
        assert rep["stage_totals"]["units"] == \
            sum(r.units_processed for r in results)
        assert rep["phase_totals_s"]["map"] == \
            sum(r.map_seconds for r in results)
        assert rep["makespan_s"] > 0
        assert rep["straggler_rank"] in range(NPROCS)
        for rank in range(NPROCS):
            assert 0.0 <= rep["per_rank"][rank]["utilization"] <= 1.0

    def test_every_rank_has_lifecycle_span(self, blast_run):
        session, _ = blast_run
        for rank in range(NPROCS):
            names = [rec[0] for rec in span_records(session.tracer(rank))]
            assert "rank" in names
            assert "mrblast.iteration" in names


class TestSomCrosscheck:
    def test_bcast_reduce_seconds_match_exactly(self, tmp_path):
        mat = tmp_path / "v.mat"
        rng = np.random.default_rng(3)
        write_matrix_file(mat, rng.random((150, 6)))
        config = MrSomConfig(
            matrix_path=str(mat), grid=SOMGrid(4, 4), epochs=3,
            block_rows=25, mapstyle=MapStyle.CHUNK,
        )
        session = TraceSession(NPROCS)
        results = run_spmd(NPROCS, run_mrsom, config, trace=session)
        for r in results:
            recs = list(span_records(session.tracer(r.rank)))
            bcast = sum(rec[5]["seconds"] for rec in recs
                        if rec[0] == "mrsom.bcast")
            reduce = sum(rec[5]["seconds"] for rec in recs
                         if rec[0] == "mrsom.reduce")
            assert bcast == r.bcast_seconds
            assert reduce == r.reduce_seconds
            epochs = [rec for rec in recs if rec[0] == "mrsom.epoch"]
            assert len(epochs) == config.epochs
