"""Per-iteration checkpointing and resume (restartable mrblast runs)."""

import json
import os

import pytest

from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, mrblast_spmd
from repro.core.mrblast.merge import collect_rank_hits


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("ckpt")
    com = synthetic_community(n_genomes=3, genome_length=2000, seed=71)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1200, seed=72)
    alias = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1400)
    reads = list(shred_records(com.genomes))[:12]
    blocks = [reads[i : i + 3] for i in range(0, len(reads), 3)]  # 4 blocks
    return str(alias), blocks, BlastOptions.blastn(evalue=1e-4, max_hits=10)


def _signatures(merged):
    return sorted(
        (qid, h.subject_id, h.q_start, h.s_start, round(h.bit_score, 1))
        for qid, hits in merged.items()
        for h in hits
    )


class TestCheckpointResume:
    def test_interrupted_then_resumed_equals_full_run(self, workload, tmp_path):
        alias, blocks, options = workload

        full = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "full"), blocks_per_iteration=2,
        ))
        full_hits = collect_rank_hits([r.output_path for r in full])

        # Phase 1: run only the first of two iterations ("crash" after it).
        out = str(tmp_path / "resumable")
        partial = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=out, blocks_per_iteration=2, stop_after_iterations=1,
        ))
        partial_hits = collect_rank_hits([r.output_path for r in partial])
        assert set(partial_hits) < set(full_hits)  # strictly fewer queries

        # Progress files recorded one completed iteration per rank.
        for rank in range(3):
            with open(os.path.join(out, f"progress.rank{rank:04d}.json")) as fh:
                assert len(json.load(fh)["offsets"]) == 1

        # Phase 2: resume; only the remaining iteration's units are run.
        resumed = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=out, blocks_per_iteration=2, resume=True,
        ))
        total_units_resumed = sum(r.units_processed for r in resumed)
        total_units_full = sum(r.units_processed for r in full)
        assert total_units_resumed == total_units_full // 2

        resumed_hits = collect_rank_hits([r.output_path for r in resumed])
        assert _signatures(resumed_hits) == _signatures(full_hits)

    def test_resume_truncates_partial_iteration_output(self, workload, tmp_path):
        """Garbage appended after the last checkpoint must be discarded."""
        alias, blocks, options = workload
        out = str(tmp_path / "trunc")
        mrblast_spmd(2, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=out, blocks_per_iteration=2, stop_after_iterations=1,
        ))
        victim = os.path.join(out, "hits.rank0000.tsv")
        with open(victim, "a") as fh:
            fh.write("CORRUPT\tPARTIAL\tLINE\n")  # crash mid-iteration 2

        resumed = mrblast_spmd(2, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=out, blocks_per_iteration=2, resume=True,
        ))
        merged = collect_rank_hits([r.output_path for r in resumed])  # parses cleanly
        assert merged
        assert "CORRUPT" not in open(victim).read()

    def test_resume_on_fresh_directory_is_a_normal_run(self, workload, tmp_path):
        alias, blocks, options = workload
        results = mrblast_spmd(2, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "fresh"), resume=True,
        ))
        assert collect_rank_hits([r.output_path for r in results])

    def test_without_resume_everything_reruns(self, workload, tmp_path):
        alias, blocks, options = workload
        out = str(tmp_path / "norerun")
        first = mrblast_spmd(2, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options, output_dir=out,
        ))
        second = mrblast_spmd(2, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options, output_dir=out,
        ))
        assert sum(r.units_processed for r in second) == sum(
            r.units_processed for r in first
        )
        # Output not duplicated (file was truncated at start).
        assert _signatures(collect_rank_hits([r.output_path for r in second])) == \
            _signatures(collect_rank_hits([r.output_path for r in first]))

    def test_stop_after_validation(self, workload):
        alias, blocks, options = workload
        with pytest.raises(ValueError):
            MrBlastConfig(alias_path=alias, query_blocks=blocks, options=options,
                          stop_after_iterations=0)
