"""The paper's §V future-work features: locality dispatch, dynamic chunking."""

import numpy as np
import pytest

from repro.bio import shred_records, synthetic_community, synthetic_nt_database, write_fasta
from repro.blast import BlastOptions, format_database
from repro.core import MrBlastConfig, mrblast_spmd
from repro.core.baselines import run_serial_blast
from repro.core.mrblast.dynamic import (
    DynamicChunkConfig,
    mrblast_dynamic_spmd,
    plan_block_ranges,
)
from repro.core.mrblast.merge import collect_rank_hits
from repro.mpi import run_spmd
from repro.mrmpi import MapReduce


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fw")
    com = synthetic_community(n_genomes=3, genome_length=2400, seed=31)
    db = synthetic_nt_database(com, n_decoys=2, decoy_length=1500, homolog_rate=0.05, seed=32)
    alias = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1400)
    reads = list(shred_records(com.genomes))[:12]
    fasta = tmp / "queries.fasta"
    write_fasta(reads, fasta)
    options = BlastOptions.blastn(evalue=1e-4, max_hits=20)
    return str(alias), reads, str(fasta), options


class TestLocalityDispatch:
    def test_locality_key_routing_in_mrmpi(self):
        """Workers keep receiving items of the key they just processed."""

        def main(comm):
            items = [(i % 4, i) for i in range(40)]  # 4 keys x 10 items
            runs = []  # (key) sequence processed by this rank

            def mapper(itask, item, kv):
                runs.append(item[0])

            mr = MapReduce(comm)
            mr.map_items(items, mapper, locality_key=lambda it: it[0])
            mr.close()
            switches = sum(1 for a, b in zip(runs, runs[1:]) if a != b)
            return (len(runs), switches)

        results = run_spmd(3, main)
        assert results[0] == (0, 0)  # master maps nothing
        total = sum(n for n, _ in results)
        assert total == 40
        # Two workers, four keys: each worker should switch keys only when a
        # key drains (~1-3 switches), never per item.
        for n, switches in results[1:]:
            if n:
                assert switches <= 3

    def test_locality_results_identical_and_switches_reduced(self, workload, tmp_path):
        alias, reads, _, options = workload
        blocks = [reads[i : i + 3] for i in range(0, len(reads), 3)]
        serial = run_serial_blast(alias, blocks, options)

        plain = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "plain"), work_order="query_major",
        ))
        local = mrblast_spmd(3, MrBlastConfig(
            alias_path=alias, query_blocks=blocks, options=options,
            output_dir=str(tmp_path / "local"), work_order="query_major",
            locality_aware=True,
        ))
        hits_plain = collect_rank_hits([r.output_path for r in plain])
        hits_local = collect_rank_hits([r.output_path for r in local])
        assert set(hits_local) == set(serial)
        assert {q: len(v) for q, v in hits_local.items()} == {
            q: len(v) for q, v in hits_plain.items()
        }
        # The whole point: far fewer partition re-opens.
        assert (
            sum(r.partition_switches for r in local)
            < sum(r.partition_switches for r in plain) / 2
        )


class TestDynamicChunking:
    def test_plan_block_ranges_covers_everything_with_taper(self):
        ranges = plan_block_ranges(100, block_size=16, taper_fraction=0.25)
        assert ranges[0] == (0, 16)
        # Contiguous full coverage.
        assert ranges[0][0] == 0 and ranges[-1][1] == 100
        for (a, b), (c, _d) in zip(ranges, ranges[1:]):
            assert b == c and a < b
        # Tail blocks shrink geometrically.
        tail_sizes = [b - a for a, b in ranges if a >= 75]
        assert tail_sizes == sorted(tail_sizes, reverse=True)
        assert tail_sizes[-1] < 16

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            plan_block_ranges(0, 4)
        with pytest.raises(ValueError):
            plan_block_ranges(10, 0)

    def test_no_taper_uniform_blocks(self):
        ranges = plan_block_ranges(40, 10, taper_fraction=0.0)
        assert ranges == [(0, 10), (10, 20), (20, 30), (30, 40)]

    def test_dynamic_run_matches_serial(self, workload, tmp_path):
        alias, reads, fasta, options = workload
        config = DynamicChunkConfig(
            alias_path=alias,
            query_fasta=fasta,
            options=options,
            output_dir=str(tmp_path / "dyn"),
            target_unit_seconds=0.05,
            pilot_queries=2,
        )
        results = mrblast_dynamic_spmd(3, config)
        assert all(r.block_size == results[0].block_size for r in results)
        assert results[0].n_blocks >= 1
        merged = collect_rank_hits([r.output_path for r in results])
        serial = run_serial_blast(alias, [reads], options)
        assert set(merged) == set(serial)
        for qid in serial:
            assert len(merged[qid]) == len(serial[qid])

    def test_pilot_respects_bounds(self, workload, tmp_path):
        alias, _, fasta, options = workload
        from repro.bio.fasta import FastaIndex
        from repro.blast.dbreader import DatabaseAlias
        from repro.core.mrblast.dynamic import pilot_block_size

        config = DynamicChunkConfig(
            alias_path=alias, query_fasta=fasta, options=options,
            target_unit_seconds=1e9, max_block=5,
        )
        size = pilot_block_size(FastaIndex(fasta), DatabaseAlias.load(alias), config)
        assert size == 5  # clamped at max_block

        config2 = DynamicChunkConfig(
            alias_path=alias, query_fasta=fasta, options=options,
            target_unit_seconds=1e-9, min_block=2,
        )
        size2 = pilot_block_size(FastaIndex(fasta), DatabaseAlias.load(alias), config2)
        assert size2 == 2  # clamped at min_block

    def test_config_validation(self, workload):
        alias, _, fasta, options = workload
        with pytest.raises(ValueError):
            DynamicChunkConfig(alias_path=alias, query_fasta=fasta,
                               target_unit_seconds=0)
        with pytest.raises(ValueError):
            DynamicChunkConfig(alias_path=alias, query_fasta=fasta, taper_fraction=1.0)
        with pytest.raises(ValueError):
            DynamicChunkConfig(alias_path=alias, query_fasta=fasta, min_block=9, max_block=2)
