"""Utility helpers: RNG derivation, timers, byte units, logging."""

import logging
import time

import numpy as np
import pytest

from repro.util import (
    Stopwatch,
    derive_rng,
    format_bytes,
    format_duration,
    get_logger,
    parse_bytes,
    rank_logger,
    spawn_rngs,
)
from repro.util.rng import as_rng, choice_without_replacement
from repro.util.units import GB, KB, MB


class TestRng:
    def test_derive_deterministic(self):
        a = derive_rng(42, "node", 3).random(5)
        b = derive_rng(42, "node", 3).random(5)
        np.testing.assert_array_equal(a, b)

    def test_derive_independent_streams(self):
        a = derive_rng(42, "node", 3).random(5)
        b = derive_rng(42, "node", 4).random(5)
        c = derive_rng(42, "core", 3).random(5)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_spawn_rngs(self):
        rngs = spawn_rngs(7, 4)
        assert len(rngs) == 4
        draws = {float(r.random()) for r in rngs}
        assert len(draws) == 4
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)

    def test_as_rng_passthrough_and_coerce(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen
        assert isinstance(as_rng(5), np.random.Generator)

    def test_choice_without_replacement(self):
        rng = np.random.default_rng(1)
        picked = choice_without_replacement(rng, list("abcdef"), 4)
        assert len(picked) == len(set(picked)) == 4
        with pytest.raises(ValueError):
            choice_without_replacement(rng, [1, 2], 3)


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first >= 0.01

    def test_misuse_raises(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running


class TestFormatting:
    def test_format_duration(self):
        assert format_duration(12.34) == "12.3s"
        assert format_duration(90) == "1.5min"
        assert format_duration(7200) == "2.00h"
        assert format_duration(-90) == "-1.5min"

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(3 * GB) == "3.0GB"
        assert format_bytes(1536 * KB) == "1.5MB"

    def test_parse_bytes(self):
        assert parse_bytes("32GB") == 32 * GB
        assert parse_bytes("1.5m") == int(1.5 * MB)
        assert parse_bytes("4096") == 4096
        assert parse_bytes(123) == 123
        with pytest.raises(ValueError):
            parse_bytes("12parsecs")
        with pytest.raises(ValueError):
            parse_bytes("GB")
        with pytest.raises(ValueError):
            parse_bytes("")


class TestLogging:
    def test_get_logger_namespaced(self):
        log = get_logger("blast.engine")
        assert log.name == "repro.blast.engine"
        assert get_logger("repro.core").name == "repro.core"

    def test_rank_logger_carries_rank(self):
        adapter = rank_logger("core.mrblast", 5)
        assert adapter.extra == {"rank": 5}
        assert isinstance(adapter, logging.LoggerAdapter)
