"""Failure paths: degraded completion mid-batch and restart without dupes.

Two distinct failure classes:

- a *worker* dying mid-batch under ``degraded=True`` — the batch completes
  on survivors with byte-correct results and the session keeps serving;
- the whole *session* dying (application error, ``degraded=False``) — the
  service restarts it, resubmits only unresolved queries, and the delivery
  ledger guarantees the sink never sees a query's results twice, even
  across a full service restart.
"""

import pytest

from repro.mpi.exceptions import RankFailure
from repro.serve import DeliveryLedger, QueryService, ResidentBlastSession, ServeConfig


def make_cfg(alias_path, options, **kw):
    defaults = dict(
        alias_path=alias_path, nprocs=3, options=options, backend="thread",
        max_batch=4, max_delay=0.01, idle_tick=0.05,
    )
    defaults.update(kw)
    return ServeConfig(**defaults)


class TestDegradedMidBatch:
    def test_worker_crash_completes_batch_with_correct_results(
            self, serve_workload, oracle):
        alias_path, reads, options = serve_workload
        tripped = []

        def die_once(item):
            if item.block_index == 0 and item.partition_index == 0 and not tripped:
                tripped.append(True)
                raise RankFailure(-1, -1)

        cfg = make_cfg(alias_path, options, degraded=True,
                       unit_fault_injector=die_once)
        svc = QueryService(cfg).start()
        try:
            futures = [svc.submit(r) for r in reads]
            svc.drain(timeout=120.0)
            for r, fut in zip(reads, futures):
                assert fut.result(timeout=0.0) == oracle[r.id]
        finally:
            stats = dict(svc.stats)
            svc.close()
        assert tripped, "fault injector never fired"
        assert stats["degraded_batches"] >= 1
        assert stats["restarts"] == 0  # degraded completion, not a restart


class TestSessionRestart:
    def _arming_factory(self, cfg, armed):
        """Session factory whose fault injector fires only while armed."""

        def crash_when_armed(item):
            if armed and armed[0]:
                armed[0] = False
                raise RuntimeError("injected session loss")

        def factory():
            import dataclasses

            session_cfg = dataclasses.replace(
                cfg, unit_fault_injector=crash_when_armed)
            return ResidentBlastSession(session_cfg).start()

        return factory

    def test_restart_resubmits_only_unresolved_queries(
            self, serve_workload, oracle, tmp_path):
        alias_path, reads, options = serve_workload
        cfg = make_cfg(alias_path, options, degraded=False)
        armed = [False]
        ledger = DeliveryLedger(
            str(tmp_path / "ledger.json"), str(tmp_path / "sink.tsv"))
        svc = QueryService(
            cfg, session_factory=self._arming_factory(cfg, armed),
            ledger=ledger).start()
        try:
            # Phase 1: deliver a first wave cleanly.
            first = [svc.submit(r) for r in reads[:4]]
            svc.drain(timeout=120.0)
            assert all(f.done() for f in first)
            assert len(ledger) == 4

            # Phase 2: arm the injector; the next batch kills the session.
            armed[0] = True
            second = [svc.submit(r) for r in reads[4:8]]
            svc.drain(timeout=120.0)
            for r, fut in zip(reads[4:8], second):
                assert fut.result(timeout=0.0) == oracle[r.id]
        finally:
            stats = dict(svc.stats)
            svc.close()

        assert stats["restarts"] == 1
        assert stats["resubmitted"] >= 1
        # Exactly-once delivery: one ledger entry per query, and the sink
        # is precisely the concatenation the ledger describes.
        assert len(ledger) == 8
        sink = open(tmp_path / "sink.tsv", "rb").read()
        assert sink == b"".join(
            ledger.read(r.id) for r in sorted(
                reads, key=lambda r: ledger._entries[r.id][0]))
        for r in reads:
            assert ledger.read(r.id) == oracle[r.id]

    def test_restart_budget_is_bounded(self, serve_workload):
        alias_path, reads, options = serve_workload
        cfg = make_cfg(alias_path, options, degraded=False, nprocs=2)

        def always_crash(item):
            raise RuntimeError("permanently broken")

        import dataclasses

        broken = dataclasses.replace(cfg, unit_fault_injector=always_crash)
        svc = QueryService(
            cfg, session_factory=lambda: ResidentBlastSession(broken).start(),
            max_restarts=2).start()
        try:
            svc.submit(reads[0])
            with pytest.raises(RuntimeError, match="giving up"):
                svc.drain(timeout=120.0)
        finally:
            svc.close()

    def test_background_pump_failure_rejects_outstanding_futures(
            self, serve_workload):
        # Regression: the background pump used to swallow the terminal
        # "restarts exhausted" error, leaving every outstanding future
        # hanging until caller timeout with no indication of failure.
        alias_path, reads, options = serve_workload
        cfg = make_cfg(alias_path, options, degraded=False, nprocs=2)

        def always_crash(item):
            raise RuntimeError("permanently broken")

        import dataclasses

        broken = dataclasses.replace(cfg, unit_fault_injector=always_crash)
        svc = QueryService(
            cfg, session_factory=lambda: ResidentBlastSession(broken).start(),
            max_restarts=1).start(pump_interval=0.01)
        try:
            fut = svc.submit(reads[0])
            svc.flush()
            with pytest.raises(RuntimeError, match="giving up"):
                fut.result(timeout=120.0)
            # Terminal: the service stopped intake too.
            from repro.serve.admission import AdmissionError

            with pytest.raises(AdmissionError, match="closed"):
                svc.submit(reads[1])
        finally:
            svc.close()


class TestLedgerResumeAcrossServices:
    def test_new_service_over_old_ledger_never_duplicates(
            self, serve_workload, oracle, tmp_path):
        alias_path, reads, options = serve_workload
        cfg = make_cfg(alias_path, options, nprocs=2)
        ledger_path = str(tmp_path / "ledger.json")
        sink_path = str(tmp_path / "sink.tsv")

        # Service 1 delivers the first half, then goes away entirely.
        svc1 = QueryService(
            cfg, ledger=DeliveryLedger(ledger_path, sink_path)).start()
        try:
            futs = [svc1.submit(r) for r in reads[:4]]
            svc1.drain(timeout=120.0)
            assert all(f.done() for f in futs)
        finally:
            svc1.close()
        sink_after_first = open(sink_path, "rb").read()

        # Service 2 resumes over the same ledger and is asked for all 8:
        # the first 4 come back from the sink, only the last 4 are new.
        ledger2 = DeliveryLedger(ledger_path, sink_path)
        assert len(ledger2) == 4
        svc2 = QueryService(cfg, ledger=ledger2).start()
        try:
            futs = [svc2.submit(r) for r in reads]
            svc2.drain(timeout=120.0)
            for r, fut in zip(reads, futs):
                assert fut.result(timeout=0.0) == oracle[r.id]
        finally:
            svc2.close()

        sink = open(sink_path, "rb").read()
        assert sink.startswith(sink_after_first)  # old bytes never rewritten
        assert len(ledger2) == 8  # one entry per query, no duplicates
        assert len(sink) == sum(
            ledger2._entries[r.id][1] for r in reads)

    def test_reopen_truncates_orphaned_sink_bytes(self, tmp_path):
        # A crash between the sink append and the ledger commit leaves
        # uncommitted bytes in the sink; reopening must truncate them so
        # the re-delivered query is not duplicated in the sink itself.
        ledger_path = str(tmp_path / "ledger.json")
        sink_path = str(tmp_path / "sink.tsv")
        ledger = DeliveryLedger(ledger_path, sink_path)
        ledger.record("q1", b"alpha\thit\n")
        with open(sink_path, "ab") as fh:  # the simulated crash window
            fh.write(b"orphaned-uncommitted-append\n")

        reopened = DeliveryLedger(ledger_path, sink_path)
        assert open(sink_path, "rb").read() == b"alpha\thit\n"
        reopened.record("q2", b"beta\thit\n")
        assert open(sink_path, "rb").read() == b"alpha\thit\nbeta\thit\n"
        assert reopened.read("q1") == b"alpha\thit\n"
        assert reopened.read("q2") == b"beta\thit\n"
