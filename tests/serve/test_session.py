"""Resident rank session: warm ranks, many jobs, clean traces, degradation.

These are integration tests of :mod:`repro.serve.session` alone (no
service front door): jobs are pushed straight at the session and envelopes
read back, pinning the rank-loop invariants the service builds on.
"""

import pytest

from repro.mpi.exceptions import RankFailure
from repro.obs.trace import TraceSession
from repro.serve.session import BlockJob, ResidentBlastSession, ServeConfig


def make_cfg(alias_path, options, **kw):
    defaults = dict(
        alias_path=alias_path, nprocs=2, options=options, backend="thread",
        idle_tick=0.05, max_batch=4,
    )
    defaults.update(kw)
    return ServeConfig(**defaults)


def run_jobs(session, jobs, timeout=60.0):
    """Submit jobs one by one, returning their envelopes in order."""
    envelopes = []
    for job in jobs:
        session.submit(job)
        env = session.poll_result(timeout=timeout)
        assert env is not None, f"no envelope for job {job.job_id}"
        envelopes.append(env)
    return envelopes


class TestResidentSession:
    def test_two_consecutive_jobs_on_the_same_ranks(self, serve_workload, oracle):
        alias_path, reads, options = serve_workload
        session = ResidentBlastSession(make_cfg(alias_path, options)).start()
        try:
            envs = run_jobs(session, [
                BlockJob(job_id=0, queries=tuple(reads[:4])),
                BlockJob(job_id=1, queries=tuple(reads[4:8])),
            ])
        finally:
            stats = session.stop()
        assert [e.job_id for e in envs] == [0, 1]
        for env, queries in zip(envs, (reads[:4], reads[4:8])):
            for q in queries:
                assert env.results.get(q.id, b"") == oracle[q.id]
        # Same ranks served both jobs: lifetime counters span the session.
        assert all(s is not None and s.jobs_run == 2 for s in stats)
        assert sum(s.units_processed for s in stats) > 0

    def test_idle_session_survives_on_keepalive_ticks(self, serve_workload):
        import time

        alias_path, reads, options = serve_workload
        cfg = make_cfg(alias_path, options, idle_tick=0.02)
        session = ResidentBlastSession(cfg).start()
        try:
            time.sleep(0.15)  # several tick periods of pure idleness
            envs = run_jobs(session, [BlockJob(job_id=0, queries=tuple(reads[:2]))])
            assert envs[0].results
        finally:
            stats = session.stop()
        assert all(s.ticks_seen >= 1 for s in stats)
        assert not session.failed

    def test_session_budget_bounds_the_drain_not_the_lifetime(
            self, serve_workload, oracle):
        # Regression: the watcher used to pass session_budget to the join
        # at start(), so a perfectly healthy resident session was
        # force-aborted once it had merely been *up* that long.  The budget
        # must only clock the shutdown drain after the stop sentinel.
        import time

        alias_path, reads, options = serve_workload
        cfg = make_cfg(alias_path, options, session_budget=0.2)
        session = ResidentBlastSession(cfg).start()
        try:
            time.sleep(0.5)  # several whole budget periods of healthy uptime
            assert not session.failed and not session.closed
            envs = run_jobs(session, [BlockJob(job_id=0, queries=(reads[0],))])
            assert envs[0].results.get(reads[0].id, b"") == oracle[reads[0].id]
        finally:
            stats = session.stop(timeout=30.0)
        assert not session.failed
        assert stats is not None and all(s.jobs_run == 1 for s in stats)

    def test_session_reports_exact_kv_bytes(self, serve_workload):
        alias_path, reads, options = serve_workload
        session = ResidentBlastSession(make_cfg(alias_path, options)).start()
        try:
            (env,) = run_jobs(session, [BlockJob(job_id=0, queries=tuple(reads[:4]))])
        finally:
            session.stop()
        # Columnar plane: nbytes is exact array accounting, and a block
        # with hits must have staged a nonzero working set.
        assert env.kv_bytes > 0

    def test_submit_after_stop_raises(self, serve_workload):
        alias_path, reads, options = serve_workload
        session = ResidentBlastSession(make_cfg(alias_path, options)).start()
        session.stop()
        with pytest.raises(RuntimeError):
            session.submit(BlockJob(job_id=0, queries=tuple(reads[:1])))

    def test_config_validation_fails_fast(self, serve_workload, tmp_path):
        alias_path, _reads, options = serve_workload
        with pytest.raises(ValueError):
            ServeConfig(alias_path=str(tmp_path / "nope.pal.json")).validate()
        with pytest.raises(ValueError):
            make_cfg(alias_path, options, nprocs=0).validate()
        with pytest.raises(ValueError):
            make_cfg(alias_path, options, idle_tick=0.0).validate()
        with pytest.raises(ValueError):
            make_cfg(alias_path, options, low_watermark=0.9,
                     high_watermark=0.5).validate()


class TestTraceBalanceAcrossJobs:
    """Regression: resident ranks must not leak open spans between jobs.

    The one-shot tracers assumed one job per process lifetime; a resident
    rank brackets every job with ``open_depth``/``unwind(to_depth=...)`` so
    two consecutive jobs on the same ranks export balanced B/E streams.
    """

    def test_b_e_balanced_after_two_jobs(self, serve_workload):
        alias_path, reads, options = serve_workload
        cfg = make_cfg(alias_path, options)
        trace = TraceSession(cfg.nprocs)
        session = ResidentBlastSession(cfg, trace=trace).start()
        try:
            run_jobs(session, [
                BlockJob(job_id=0, queries=tuple(reads[:3])),
                BlockJob(job_id=1, queries=tuple(reads[3:6])),
            ])
        finally:
            session.stop()
        for rank in range(cfg.nprocs):
            events = trace.tracer(rank).events
            begins = sum(1 for e in events if e[0] == "B")
            ends = sum(1 for e in events if e[0] == "E")
            assert begins == ends, f"rank {rank}: {begins} B vs {ends} E"
            assert trace.tracer(rank).open_depth == 0
            # Both jobs left their serve.job span in the stream.
            job_spans = [e for e in events if e[0] == "B" and e[3] == "serve.job"]
            assert len(job_spans) == 2

    def test_chrome_export_validates_after_consecutive_jobs(self, serve_workload):
        from repro.obs.export import chrome_trace, validate_chrome_trace

        alias_path, reads, options = serve_workload
        cfg = make_cfg(alias_path, options)
        trace = TraceSession(cfg.nprocs)
        session = ResidentBlastSession(cfg, trace=trace).start()
        try:
            run_jobs(session, [
                BlockJob(job_id=0, queries=tuple(reads[:2])),
                BlockJob(job_id=1, queries=tuple(reads[2:4])),
            ])
        finally:
            session.stop()
        assert validate_chrome_trace(chrome_trace(trace)) == []


class TestDegradedSession:
    def test_worker_death_mid_batch_then_service_continues(
            self, serve_workload, oracle):
        alias_path, reads, options = serve_workload
        tripped = []

        def die_once(item):
            if item.block_index == 0 and item.partition_index == 0 and not tripped:
                tripped.append(True)
                raise RankFailure(-1, -1)

        cfg = make_cfg(alias_path, options, nprocs=3, degraded=True,
                       unit_fault_injector=die_once)
        trace = TraceSession(cfg.nprocs)
        session = ResidentBlastSession(cfg, trace=trace).start()
        try:
            envs = run_jobs(session, [
                BlockJob(job_id=0, queries=tuple(reads[:4])),
                BlockJob(job_id=1, queries=tuple(reads[4:8])),
            ])
        finally:
            stats = session.stop()

        # Job 0 completed degraded with byte-correct results.
        assert envs[0].degraded
        assert len(envs[0].lost_ranks) == 1 and 0 not in envs[0].lost_ranks
        for q in reads[:4]:
            assert envs[0].results.get(q.id, b"") == oracle[q.id]
        # The session kept serving on the survivors: job 1 also correct.
        for q in reads[4:8]:
            assert envs[1].results.get(q.id, b"") == oracle[q.id]
        assert not session.failed

        dead = envs[0].lost_ranks[0]
        assert stats[dead] is None  # the lost rank left the session
        survivors = [s for s in stats if s is not None]
        assert {s.rank for s in survivors} | {dead} == {0, 1, 2}
        for s in survivors:
            assert s.degraded and s.lost_ranks == (dead,)
            assert s.jobs_run == 2

        # Even the dead rank's trace is balanced: its unwind closed the
        # spans DegradedRankLoss tore through.
        for rank in range(cfg.nprocs):
            events = trace.tracer(rank).events
            b = sum(1 for e in events if e[0] == "B")
            e_ = sum(1 for e in events if e[0] == "E")
            assert b == e_, f"rank {rank} unbalanced after degraded loss"
