"""Coalescer state machine on virtual time: no clocks, no sleeps.

Every ``now`` below is an explicit number (ticks from a TickClock where a
monotonic source is wanted); the coalescer itself never reads wall time, so
these tests are exact and instantaneous.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.seq import SeqRecord
from repro.obs.trace import TickClock
from repro.serve.coalescer import (
    Coalescer,
    Submission,
    advise_batch_size,
    load_machine_model,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def rec(i):
    return SeqRecord(id=f"q{i}", seq="ACGT" * 25)


def sub(seq, *, tenant="default", at=0.0, deadline=None, qid=None):
    return Submission(
        seq=seq,
        query=SeqRecord(id=qid or f"q{seq}", seq="ACGT" * 25),
        tenant=tenant,
        submitted_at=at,
        deadline=deadline,
    )


class TestSizeFlush:
    def test_full_batch_flushes_immediately(self):
        co = Coalescer(max_batch=3, max_delay=100.0)
        for i in range(3):
            co.add(sub(i, at=0.0), now=0.0)
        batches = co.poll(now=0.0)
        assert len(batches) == 1
        assert batches[0].reason == "size"
        assert batches[0].query_ids == ("q0", "q1", "q2")
        assert co.pending == 0

    def test_partial_batch_waits(self):
        co = Coalescer(max_batch=3, max_delay=100.0)
        co.add(sub(0, at=0.0), now=0.0)
        co.add(sub(1, at=0.0), now=0.0)
        assert co.poll(now=50.0) == []
        assert co.pending == 2

    def test_overfull_queue_yields_multiple_batches(self):
        co = Coalescer(max_batch=2, max_delay=100.0)
        for i in range(5):
            co.add(sub(i, at=0.0), now=0.0)
        batches = co.poll(now=0.0)
        assert [len(b) for b in batches] == [2, 2]  # remainder keeps waiting
        assert co.pending == 1


class TestDeadlineFlush:
    def test_max_delay_bounds_the_wait(self):
        co = Coalescer(max_batch=10, max_delay=5.0)
        co.add(sub(0, at=1.0), now=1.0)
        assert co.next_flush_at() == 6.0
        assert co.poll(now=5.9) == []
        batches = co.poll(now=6.0)
        assert len(batches) == 1 and batches[0].reason == "deadline"

    def test_submission_deadline_beats_max_delay(self):
        co = Coalescer(max_batch=10, max_delay=50.0)
        co.add(sub(0, at=0.0, deadline=3.0), now=0.0)
        assert co.next_flush_at() == 3.0
        assert co.poll(now=2.0) == []
        assert len(co.poll(now=3.0)) == 1

    def test_deadline_batch_carries_everything_pending(self):
        co = Coalescer(max_batch=10, max_delay=5.0)
        co.add(sub(0, at=0.0), now=0.0)
        co.add(sub(1, at=4.0), now=4.0)  # not yet due on its own
        batches = co.poll(now=5.0)
        assert len(batches) == 1
        assert batches[0].query_ids == ("q0", "q1")

    def test_tickclock_driven_sequence(self):
        clock = TickClock()  # 0, 1, 2, ...
        co = Coalescer(max_batch=10, max_delay=2.0)
        co.add(sub(0, at=clock()), now=0.0)       # t=0, due at 2
        assert co.poll(now=clock()) == []         # t=1
        assert len(co.poll(now=clock())) == 1     # t=2

    def test_flush_forces_everything_out(self):
        co = Coalescer(max_batch=10, max_delay=1000.0)
        co.add(sub(0, at=0.0), now=0.0)
        co.add(sub(1, at=0.0), now=0.0)
        batches = co.flush(now=0.5)
        assert len(batches) == 1 and batches[0].reason == "forced"
        assert co.pending == 0 and co.next_flush_at() is None


class TestFairness:
    def test_weighted_pop_order_across_tenants(self):
        co = Coalescer(max_batch=8, max_delay=100.0, weights={"heavy": 3.0, "light": 1.0})
        n = 0
        for _ in range(8):
            co.add(sub(n, tenant="heavy"), now=0.0)
            n += 1
        for _ in range(8):
            co.add(sub(n, tenant="light"), now=0.0)
            n += 1
        (batch,) = co.poll(now=0.0)[:1]
        tenants = [s.tenant for s in batch.submissions]
        assert tenants.count("heavy") == 6  # 3:1 stride over 8 pops
        assert tenants.count("light") == 2

    def test_saturating_tenant_cannot_starve_light_one(self):
        co = Coalescer(max_batch=4, max_delay=100.0)
        n = 0
        for _ in range(40):
            co.add(sub(n, tenant="noisy"), now=0.0)
            n += 1
        co.add(sub(n, tenant="quiet"), now=0.0)
        first = co.poll(now=0.0)[0]
        assert any(s.tenant == "quiet" for s in first.submissions)


class TestDuplicateQueryIds:
    def test_same_id_never_shares_a_batch(self):
        co = Coalescer(max_batch=4, max_delay=100.0)
        co.add(sub(0, qid="dup"), now=0.0)
        co.add(sub(1, qid="dup"), now=0.0)
        co.add(sub(2, qid="other"), now=0.0)
        batches = co.flush(now=0.0)
        assert len(batches) == 2
        assert batches[0].query_ids == ("dup", "other")
        assert batches[1].query_ids == ("dup",)


class TestCoalescerProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 5), st.sampled_from(["a", "b", "c"])),
            min_size=1, max_size=24),
        max_batch=st.integers(1, 6),
    )
    def test_every_submission_lands_in_exactly_one_batch(self, ops, max_batch):
        co = Coalescer(max_batch=max_batch, max_delay=10.0)
        for seq, (qi, tenant) in enumerate(ops):
            co.add(sub(seq, tenant=tenant, qid=f"q{qi}", at=float(seq)), now=float(seq))
        batches = co.poll(now=float(len(ops))) + co.flush(now=float(len(ops)) + 100.0)
        seen = [s.seq for b in batches for s in b.submissions]
        assert sorted(seen) == list(range(len(ops)))
        for b in batches:
            assert len(b) <= max_batch
            ids = [s.query.id for s in b.submissions]
            assert len(ids) == len(set(ids)), "duplicate query id within a batch"


class TestBatchAdvice:
    def test_reads_the_shuffle_bench_model(self):
        path = os.path.join(REPO_ROOT, "BENCH_shuffle.json")
        thread = load_machine_model(path, backend="thread")
        proc = load_machine_model(path, backend="process")
        bare = load_machine_model(path, backend="process", arena=False)
        assert 0 < thread["alpha_s"] < proc["alpha_s"]
        assert proc["alpha_s"] < bare["alpha_s"]  # arena shaves latency
        with pytest.raises(ValueError):
            load_machine_model(path, backend="carrier-pigeon")

    def test_advice_scales_with_latency_and_clamps(self):
        slow = {"alpha_s": 200e-6, "bandwidth_bytes_s": 1e9}
        fast = {"alpha_s": 10e-6, "bandwidth_bytes_s": 1e10}
        a_slow = advise_batch_size(slow, nprocs=4, per_query_seconds=0.01)
        a_fast = advise_batch_size(fast, nprocs=4, per_query_seconds=0.01)
        assert a_slow >= a_fast >= 1
        assert advise_batch_size(slow, 4, per_query_seconds=1e-9) == 64  # clamp high
        assert advise_batch_size(fast, 1, per_query_seconds=10.0) == 1  # clamp low

    def test_more_ranks_need_bigger_batches(self):
        model = {"alpha_s": 150e-6, "bandwidth_bytes_s": 1e9}
        assert (advise_batch_size(model, 8, 0.005)
                >= advise_batch_size(model, 2, 0.005))
