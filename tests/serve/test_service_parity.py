"""Service/standalone parity: every interleaving, both backends, same bytes.

The pinned property: whatever order queries arrive in, however tenants mix
and wherever batch boundaries land, each :class:`QueryFuture` resolves to
exactly the bytes a standalone single-query ``run_mrblast`` produces —
including repeat submissions of the same query and queries with no hits.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bio.seq import SeqRecord
from repro.serve import QueryService, ServeConfig


def make_service(alias_path, options, *, backend="thread", nprocs=2,
                 max_batch=3, **kw):
    cfg = ServeConfig(
        alias_path=alias_path, nprocs=nprocs, options=options,
        backend=backend, max_batch=max_batch, max_delay=0.01,
        idle_tick=0.05, **kw)
    return QueryService(cfg).start()


@pytest.fixture(scope="module")
def thread_service(serve_workload):
    """One long-lived thread-backend service shared by every example."""
    alias_path, _reads, options = serve_workload
    svc = make_service(alias_path, options)
    yield svc
    svc.close()


class TestSubmissionInterleavings:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(plan=st.lists(
        st.tuples(st.integers(0, 7), st.sampled_from(["alice", "bob", "carol"])),
        min_size=1, max_size=12))
    def test_any_interleaving_matches_the_standalone_bytes(
            self, thread_service, serve_workload, oracle, plan):
        _alias, reads, _options = serve_workload
        futures = [
            (reads[qi].id, thread_service.submit(reads[qi], tenant=tenant))
            for qi, tenant in plan
        ]
        thread_service.drain(timeout=120.0)
        for qid, fut in futures:
            assert fut.result(timeout=0.0) == oracle[qid], (
                f"{qid} diverged from its standalone run")

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(order=st.permutations(list(range(8))))
    def test_arrival_order_never_changes_any_result(
            self, thread_service, serve_workload, oracle, order):
        _alias, reads, _options = serve_workload
        futures = [thread_service.submit(reads[i]) for i in order]
        thread_service.drain(timeout=120.0)
        for i, fut in zip(order, futures):
            assert fut.result(timeout=0.0) == oracle[reads[i].id]


class TestBatchBoundaryParity:
    @pytest.mark.parametrize("max_batch", [1, 2, 5, 8])
    def test_results_independent_of_batch_size(
            self, serve_workload, oracle, max_batch):
        alias_path, reads, options = serve_workload
        svc = make_service(alias_path, options, max_batch=max_batch)
        try:
            futures = [svc.submit(r) for r in reads]
            svc.drain(timeout=120.0)
            for r, fut in zip(reads, futures):
                assert fut.result(timeout=0.0) == oracle[r.id]
        finally:
            svc.close()

    def test_repeat_submissions_of_one_query_each_resolve(
            self, serve_workload, oracle):
        alias_path, reads, options = serve_workload
        svc = make_service(alias_path, options, max_batch=4)
        try:
            futures = [svc.submit(reads[0]) for _ in range(3)]
            futures += [svc.submit(reads[1])]
            svc.drain(timeout=120.0)
            for fut in futures[:3]:
                assert fut.result(timeout=0.0) == oracle[reads[0].id]
            assert futures[3].result(timeout=0.0) == oracle[reads[1].id]
            # The duplicate-id parity rule forced extra batches.
            assert svc.stats["batches"] >= 3
        finally:
            svc.close()

    def test_query_with_no_hits_resolves_empty(self, serve_workload):
        alias_path, reads, options = serve_workload
        svc = make_service(alias_path, options)
        try:
            miss = SeqRecord(id="nohit", seq="TTAATTAATT" * 6)
            fut_miss = svc.submit(miss)
            fut_hit = svc.submit(reads[0])
            svc.drain(timeout=120.0)
            assert fut_miss.result(timeout=0.0) == b""
            assert fut_hit.result(timeout=0.0) != b""
        finally:
            svc.close()


class TestConcurrentIntake:
    def test_submit_all_backfills_past_max_pending(self, serve_workload, oracle):
        # Regression: the CLI used to submit every record up front, so any
        # stream longer than max_pending crashed with AdmissionError
        # ("capacity").  submit_all interleaves submission with pumping.
        from repro.serve.cli import submit_all

        alias_path, reads, options = serve_workload
        svc = make_service(alias_path, options, max_batch=2, max_pending=2)
        try:
            futures = submit_all(svc, reads)
            svc.drain(timeout=120.0)
            for r, fut in zip(reads, futures):
                assert fut.result(timeout=0.0) == oracle[r.id]
        finally:
            svc.close()
        assert len(futures) == len(reads)

    def test_threaded_submits_with_background_pump(self, serve_workload, oracle):
        # Regression: submit() on caller threads and pump() on the pump
        # thread used to mutate shared state with no locking.
        import threading

        alias_path, reads, options = serve_workload
        svc = make_service(alias_path, options, max_batch=2)
        svc.start(pump_interval=0.005)
        futures = {}
        errors = []

        def submitter(chunk):
            try:
                for r in chunk:
                    futures[r.id] = svc.submit(r)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=submitter, args=(reads[i::4],))
            for i in range(4)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, f"concurrent submit failed: {errors!r}"
            for r in reads:
                assert futures[r.id].result(timeout=120.0) == oracle[r.id]
        finally:
            svc.close()


class TestProcessBackendParity:
    def test_process_backend_matches_the_thread_oracle(
            self, serve_workload, oracle):
        alias_path, reads, options = serve_workload
        svc = make_service(alias_path, options, backend="process", nprocs=2)
        try:
            futures = [
                svc.submit(r, tenant=t)
                for r, t in zip(reads[:6], ["a", "b", "a", "c", "b", "a"])
            ]
            svc.drain(timeout=180.0)
            for r, fut in zip(reads[:6], futures):
                assert fut.result(timeout=0.0) == oracle[r.id]
        finally:
            svc.close()
