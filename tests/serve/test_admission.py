"""Admission control and backpressure on virtual time: no sleeps anywhere.

The fair queue, quota controller and watermark gauge are pure state
machines; the service-level backpressure test drives a full
:class:`~repro.serve.service.QueryService` against a scripted in-memory
session on a :class:`~repro.obs.trace.TickClock`.
"""

import pytest

from repro.bio.seq import SeqRecord
from repro.obs.trace import TickClock, Tracer
from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    BackpressureGauge,
    FairQueue,
)
from repro.serve.service import QueryService
from repro.serve.session import BlockResult, ServeConfig


class TestFairQueue:
    def test_fifo_within_a_tenant(self):
        q = FairQueue()
        for i in range(4):
            q.push("t", i)
        assert [q.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_weighted_ratio_between_tenants(self):
        q = FairQueue({"heavy": 3.0, "light": 1.0})
        for i in range(12):
            q.push("heavy", ("h", i))
            q.push("light", ("l", i))
        first8 = [q.pop()[0] for _ in range(8)]
        assert first8.count("h") == 6 and first8.count("l") == 2

    def test_pop_order_is_deterministic(self):
        def run():
            q = FairQueue({"a": 2.0})
            for i in range(6):
                q.push("a" if i % 2 else "b", i)
            return [q.pop() for _ in range(6)]

        assert run() == run()

    def test_new_tenant_does_not_jump_the_line(self):
        q = FairQueue()
        for i in range(10):
            q.push("old", i)
        for _ in range(5):
            q.pop()
        q.push("new", "x")
        # The newcomer starts at the current pass floor: it is served soon
        # (fair share) but the old tenant keeps draining too.
        drained = [q.pop() for _ in range(6)]
        assert "x" in drained
        assert [d for d in drained if d != "x"] == [5, 6, 7, 8, 9]

    def test_push_front_restores_head(self):
        q = FairQueue()
        q.push("t", 1)
        q.push("t", 2)
        head = q.pop()
        q.push_front("t", head)
        assert q.pop() == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FairQueue().pop()

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            FairQueue({"t": 0.0})


class TestAdmissionController:
    def test_global_capacity(self):
        ac = AdmissionController(max_pending=4)
        ac.try_admit("t", pending_total=3, pending_tenant=3)
        with pytest.raises(AdmissionError) as ei:
            ac.try_admit("t", pending_total=4, pending_tenant=4)
        assert ei.value.reason == "capacity"

    def test_tenant_quota_under_saturation(self):
        ac = AdmissionController(
            max_pending=16, weights={"heavy": 3.0, "light": 1.0}, burst=1.0)
        # heavy's quota: 3/4 of 16 = 12; light's: 1/4 of 16 = 4.
        ac.try_admit("heavy", pending_total=11, pending_tenant=11)
        with pytest.raises(AdmissionError) as ei:
            ac.try_admit("heavy", pending_total=12, pending_tenant=12)
        assert ei.value.reason == "tenant-quota"
        ac.try_admit("light", pending_total=12, pending_tenant=3)  # still admitted

    def test_unknown_tenant_counts_at_weight_one(self):
        ac = AdmissionController(max_pending=10, weights={"a": 1.0}, burst=1.0)
        ac.try_admit("b", pending_total=0, pending_tenant=0)
        # a and b now split the weight table evenly: quota 5 each.
        with pytest.raises(AdmissionError):
            ac.try_admit("b", pending_total=5, pending_tenant=5)


class TestBackpressureGauge:
    def test_engage_release_hysteresis(self):
        g = BackpressureGauge(high_bytes=100, low_bytes=50)
        assert g.update(80) is None and not g.engaged
        assert g.update(100) == "engage" and g.engaged
        assert g.update(120) is None  # already engaged, no re-fire
        assert g.update(75) is None  # between watermarks: stays engaged
        assert g.update(49) == "release" and not g.engaged
        assert g.engage_count == 1

    def test_no_flapping_at_the_threshold(self):
        g = BackpressureGauge(high_bytes=100, low_bytes=50)
        transitions = [g.update(v) for v in (100, 99, 100, 99, 49, 99, 100)]
        assert transitions == ["engage", None, None, None, "release", None, "engage"]

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            BackpressureGauge(high_bytes=10, low_bytes=20)


class _ScriptedSession:
    """In-memory stand-in for ResidentBlastSession: echoes empty results.

    Each dispatched job yields one envelope whose ``kv_bytes`` comes from a
    script, letting tests steer the service's working-set estimate exactly.
    """

    def __init__(self, kv_bytes_per_batch):
        self.kv_script = list(kv_bytes_per_batch)
        self.envelopes = []
        self.failed = False
        self.failure = None
        self.closed = False

    def submit(self, job):
        kv = self.kv_script.pop(0) if self.kv_script else 0
        self.envelopes.append(BlockResult(
            job_id=job.job_id,
            results={q.id: b"" for q in job.queries},
            kv_bytes=kv,
        ))

    def poll_result(self, timeout=0.0):
        return self.envelopes.pop(0) if self.envelopes else None

    def stop(self, timeout=60.0):
        self.closed = True
        return []


def _cfg(tmp_path, alias_path, **kw):
    defaults = dict(
        alias_path=alias_path, nprocs=2, backend="thread",
        max_batch=2, max_delay=5.0, memsize=1000,
        high_watermark=0.8, low_watermark=0.4,
    )
    defaults.update(kw)
    return ServeConfig(**defaults)


class TestServiceBackpressure:
    """Service-level backpressure: virtual clock, scripted session."""

    def test_engages_and_releases_around_the_memsize_budget(
            self, serve_workload, tmp_path):
        alias_path, reads, options = serve_workload
        clock = TickClock()
        tracer = Tracer(rank=0, clock=TickClock())
        # Budget = nprocs x memsize = 2000 bytes; high mark 1600, low 800.
        cfg = _cfg(tmp_path, alias_path)
        session = _ScriptedSession(kv_bytes_per_batch=[4000] * 8)
        svc = QueryService(
            cfg, clock=clock, tracer=tracer,
            session_factory=lambda: session).start()

        # First batch teaches the EWMA: 4000 bytes / 2 queries = 2000 per
        # query, far above the 1600-byte high watermark.
        f0 = svc.submit(SeqRecord(id="q0", seq="ACGT"))
        f1 = svc.submit(SeqRecord(id="q1", seq="ACGT"))
        svc.pump()
        assert f0.done() and f1.done()

        # Next submissions drive the estimate over the high mark: pending
        # count x 2000 bytes crosses 1600 on the very first admit.
        svc.submit(SeqRecord(id="q2", seq="ACGT"))
        assert svc._gauge.engaged
        with pytest.raises(AdmissionError) as ei:
            svc.submit(SeqRecord(id="q3", seq="ACGT"))
        assert ei.value.reason == "backpressure"
        assert svc.stats["backpressure_engages"] == 1

        # Deliveries shrink the working set below the low mark: released.
        svc.flush()
        svc.pump()
        assert not svc._gauge.engaged
        svc.submit(SeqRecord(id="q4", seq="ACGT"))  # admitted again
        names = [e[3] for e in tracer.events if e[0] == "i"]
        assert "serve.backpressure" in names
        svc.close()

    def test_closed_service_rejects(self, serve_workload, tmp_path):
        alias_path, _reads, _options = serve_workload
        svc = QueryService(
            _cfg(tmp_path, alias_path), clock=TickClock(),
            session_factory=lambda: _ScriptedSession([]))
        svc.close()
        with pytest.raises(AdmissionError) as ei:
            svc.submit(SeqRecord(id="q", seq="ACGT"))
        assert ei.value.reason == "closed"
