"""Shared fixtures for the service-layer suite.

One synthetic nt workload per session, plus a per-query *oracle*: the exact
bytes a standalone single-rank ``run_mrblast`` produces for each query in
isolation.  Every parity assertion in this package compares service output
against these bytes.
"""

import os

import pytest

from repro.blast import BlastOptions, format_database
from repro.bio import shred_records, synthetic_community, synthetic_nt_database
from repro.core import MrBlastConfig, mrblast_spmd


@pytest.fixture(scope="session")
def serve_workload(tmp_path_factory):
    """(alias_path, reads, options): a small nt database plus 8 query reads."""
    tmp = tmp_path_factory.mktemp("nt_serve")
    com = synthetic_community(n_genomes=3, genome_length=2000, seed=47)
    db = synthetic_nt_database(
        com, n_decoys=2, decoy_length=1200, homolog_rate=0.05, seed=48)
    alias_path = format_database(db, tmp, "nt", kind="dna", max_volume_bytes=1500)
    reads = list(shred_records(com.genomes))[:8]
    options = BlastOptions.blastn(evalue=1e-4, max_hits=25)
    return str(alias_path), reads, options


@pytest.fixture(scope="session")
def oracle(serve_workload, tmp_path_factory):
    """query id -> bytes of a standalone one-shot run for that query alone."""
    alias_path, reads, options = serve_workload
    tmp = tmp_path_factory.mktemp("oracle")
    out = {}
    for i, rec in enumerate(reads):
        results = mrblast_spmd(1, MrBlastConfig(
            alias_path=alias_path,
            query_blocks=[[rec]],
            options=options,
            output_dir=os.path.join(tmp, f"q{i}"),
            backend="thread",
        ))
        with open(results[0].output_path, "rb") as fh:
            out[rec.id] = fh.read()
    return out
